//! The sweep daemon: a TCP listener, a cell-granular admission stage, and
//! a pool of worker threads draining cell batches fairly (round-robin
//! across active jobs) over the process-wide [`SpecCache`].
//!
//! Life of a request:
//!
//! 1. A connection handler parses one JSON line into a
//!    [`Request`](crate::protocol::Request). Malformed lines are answered
//!    with a structured `Error` and the connection survives (the service
//!    analogue of the bins' exit-2 usage convention).
//! 2. `SubmitSweep` resolves the spec through the CLI grammar and computes
//!    the canonical sweep fingerprint. Identical in-flight jobs coalesce
//!    and exact repeats are answered byte-identically from the sweep-level
//!    report cache without planning anything — the fast path. Otherwise
//!    the sweep is planned and decomposed into content-addressed cells
//!    ([`crate::protocol::cell_fingerprint`]): cells some earlier sweep
//!    already executed hydrate instantly from the [`CellCache`] — so
//!    overlapping sweeps of *different* shapes (added policy columns, app
//!    subsets, extra repetitions) share work — and only the novel cells
//!    are batched onto the pool queue. Submissions that would blow the
//!    admission quotas bounce with a structured `Overloaded` instead of
//!    queueing unboundedly. The handler then blocks on the job's
//!    subscriber channel, forwarding `Progress` lines (when streaming)
//!    until the terminal `Report`.
//! 3. Pool workers take one batch at a time from the job at the front of
//!    the round-robin rotation, so a tiny sweep keeps making progress
//!    while a Full sweep is in flight instead of starving behind it.
//!    Executed outcomes always feed the cell cache; when a job's last
//!    cell resolves, the resolving worker assembles the report through
//!    the deterministic keyed post-pass — byte-identical to direct
//!    execution no matter how many cells were hydrated, executed out of
//!    order, or shared with other sweeps — serializes the measurement
//!    bytes once, stores them in the LRU report cache and hands the same
//!    bytes to every subscriber.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use numadag_kernels::SpecCache;
use numadag_numa::Topology;
use numadag_runtime::framing::read_frame;
use numadag_runtime::{CellOutcome, Executor, SweepPlan};

use crate::cache::{CachedReport, CellCache, ReportCache};
use crate::protocol::{Request, Response, ServerStats, SweepSpec};

/// Configuration of a daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; port 0 binds an ephemeral port (read the actual one
    /// from [`ServeHandle::addr`]).
    pub addr: String,
    /// Sweep-level report-cache capacity (LRU evicts beyond this).
    pub cache_capacity: usize,
    /// Cell-cache capacity in cell outcomes (LRU evicts beyond this).
    pub cell_capacity: usize,
    /// Pool worker threads executing cell batches (minimum 1). Each worker
    /// owns one executor, rebuilt only when it switches plans.
    pub pool: usize,
    /// Cells a worker takes from a job per rotation turn (minimum 1):
    /// smaller batches are fairer, larger ones amortize locking.
    pub batch_cells: usize,
    /// Admission quota: a submission whose novel cells would push the pool
    /// queue beyond this bounces with `Overloaded`.
    pub max_queued_cells: usize,
    /// Admission quota: maximum queued/running jobs before submissions
    /// bounce with `Overloaded`.
    pub max_active_jobs: usize,
    /// Machine topology every sweep runs on (the paper's bullion S16 by
    /// default, matching the `figure1` harness).
    pub topology: Topology,
    /// When set, the report cache is loaded from this file at boot and
    /// snapshotted back on shutdown, so a restarted daemon answers previous
    /// sweeps from cache (`cache_hit=true`, zero executed cells). Missing or
    /// unreadable files are logged and ignored — persistence is an
    /// optimization, never a boot failure.
    pub cache_file: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 64,
            cell_capacity: 4096,
            pool: 1,
            batch_cells: 4,
            max_queued_cells: 4096,
            max_active_jobs: 64,
            topology: Topology::bullion_s16(),
            cache_file: None,
        }
    }
}

/// Job lifecycle states, as reported by `Status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl JobState {
    fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// One subscriber of a job: the sending half of the handler's channel, plus
/// whether it asked for per-cell progress.
struct Subscriber {
    tx: Sender<Response>,
    wants_progress: bool,
}

struct Job {
    key: u64,
    state: JobState,
    /// Cells resolved so far (hydrated at admission + executed).
    completed: usize,
    total: usize,
    /// The materialized plan; `None` only for sweep-cache-hit jobs, which
    /// never execute anything.
    plan: Option<Arc<SweepPlan>>,
    /// Per-cell content fingerprints, in plan job order.
    cell_keys: Vec<u64>,
    /// Per-cell outcomes; filled at admission (cell-cache hydration) and by
    /// pool workers, drained by the finalizing post-pass.
    outcomes: Vec<Option<CellOutcome>>,
    /// Batches of novel cell indices still waiting for a pool worker.
    pending: VecDeque<Vec<usize>>,
    /// Novel cells not yet resolved; the job finalizes when this hits 0.
    remaining: usize,
    /// Cells this job actually executed.
    executed: usize,
    /// Cells hydrated from the cell cache instead of executed.
    hydrated: usize,
    result: Option<Arc<CachedReport>>,
    subscribers: Vec<Subscriber>,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    coalesced: u64,
    completed: u64,
    cancelled: u64,
    failed: u64,
    rejected: u64,
    malformed: u64,
    executed_cells: u64,
    hydrated_cells: u64,
}

struct State {
    next_job: u64,
    /// Round-robin rotation of jobs with pending batches: workers pop the
    /// front, take one batch, and push the job back while it has more.
    active: VecDeque<u64>,
    /// Cells currently sitting in pending batches (the `max_queued_cells`
    /// quota gauge).
    queued_cells: usize,
    /// Jobs in `Queued` or `Running` state (the `max_active_jobs` gauge).
    active_jobs: usize,
    jobs: HashMap<u64, Job>,
    cache: ReportCache,
    cells: CellCache,
    counters: Counters,
}

struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    specs: Arc<SpecCache>,
    state: Mutex<State>,
    work: Condvar,
    shutdown: AtomicBool,
}

/// A running daemon: join it to block until shutdown.
pub struct ServeHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The actual bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The process-wide spec cache the daemon serves from.
    pub fn specs(&self) -> Arc<SpecCache> {
        Arc::clone(&self.shared.specs)
    }

    /// Requests shutdown without a client connection (used by tests and the
    /// load generator; remote clients send [`Request::Shutdown`]).
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until the daemon has shut down, then (when configured with a
    /// cache file) snapshots the report cache so the next boot can answer
    /// previous sweeps without executing anything.
    pub fn join(self) {
        self.accept.join().expect("accept thread panicked");
        for worker in self.workers {
            worker.join().expect("pool worker panicked");
        }
        if let Some(path) = &self.shared.config.cache_file {
            let snapshot = self.shared.state.lock().unwrap().cache.snapshot();
            match save_cache_file(path, &snapshot) {
                Ok(()) => eprintln!(
                    "numadag-serve: saved {} cached report(s) to {path}",
                    snapshot.len()
                ),
                Err(e) => eprintln!("numadag-serve: could not save cache file {path}: {e}"),
            }
        }
    }
}

/// Writes the report-cache snapshot as one JSON object:
/// `{"version": 1, "entries": [{key, executed_cells, total_cells, report}]}`
/// with entries least-recently-used first (so reloading in file order
/// reproduces the LRU ranking) and keys in the hex wire form fingerprints
/// use everywhere else (u64 does not survive the f64-backed JSON numbers).
fn save_cache_file(path: &str, snapshot: &[(u64, Arc<CachedReport>)]) -> std::io::Result<()> {
    use numadag_runtime::framing::hex_u64;
    use serde::Value;
    let entries: Vec<Value> = snapshot
        .iter()
        .map(|(key, report)| {
            Value::Object(vec![
                ("key".to_string(), Value::String(hex_u64(*key))),
                (
                    "executed_cells".to_string(),
                    Value::Number(report.executed_cells as f64),
                ),
                (
                    "total_cells".to_string(),
                    Value::Number(report.total_cells as f64),
                ),
                ("report".to_string(), Value::String(report.bytes.clone())),
            ])
        })
        .collect();
    let root = Value::Object(vec![
        ("version".to_string(), Value::Number(1.0)),
        ("entries".to_string(), Value::Array(entries)),
    ]);
    let body = serde_json::to_string(&root).expect("snapshot values are always encodable");
    // Write-then-rename so a crash mid-write never truncates a good file.
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

/// Loads a [`save_cache_file`] snapshot into `cache`, returning how many
/// entries were restored. Malformed files (or entries) are errors the boot
/// path logs and ignores.
fn load_cache_file(path: &str, cache: &mut ReportCache) -> Result<usize, String> {
    use numadag_runtime::framing::{field, str_field, u64_field};
    if !std::path::Path::new(path).exists() {
        return Ok(0);
    }
    let body = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let root: serde::Value = serde_json::from_str(&body).map_err(|e| e.to_string())?;
    let version = u64_field(&root, "cache file", "version")?;
    if version != 1 {
        return Err(format!("unsupported cache file version {version}"));
    }
    let entries = field(&root, "cache file", "entries")?
        .as_array()
        .ok_or("cache file entries must be an array")?;
    let mut loaded = 0;
    for entry in entries {
        let key = numadag_runtime::framing::hex_u64_field(entry, "cache entry", "key")?;
        let report = Arc::new(CachedReport {
            bytes: str_field(entry, "cache entry", "report")?,
            executed_cells: u64_field(entry, "cache entry", "executed_cells")? as usize,
            total_cells: u64_field(entry, "cache entry", "total_cells")? as usize,
        });
        cache.insert(key, report);
        loaded += 1;
    }
    Ok(loaded)
}

/// Binds the listener and spawns the accept + pool worker threads. Returns
/// once the address is bound, so callers can immediately connect.
pub fn serve(config: ServeConfig) -> std::io::Result<ServeHandle> {
    serve_with_specs(config, Arc::new(SpecCache::new()))
}

/// Like [`serve`], but over a caller-provided spec cache (so embedding
/// processes — tests, the load generator — can share or inspect it).
pub fn serve_with_specs(
    mut config: ServeConfig,
    specs: Arc<SpecCache>,
) -> std::io::Result<ServeHandle> {
    config.pool = config.pool.max(1);
    config.batch_cells = config.batch_cells.max(1);
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache_capacity = config.cache_capacity;
    let cell_capacity = config.cell_capacity;
    let pool = config.pool;
    let mut cache = ReportCache::new(cache_capacity);
    if let Some(path) = &config.cache_file {
        match load_cache_file(path, &mut cache) {
            Ok(loaded) if loaded > 0 => {
                eprintln!("numadag-serve: loaded {loaded} cached report(s) from {path}");
            }
            Ok(_) => {}
            Err(e) => eprintln!("numadag-serve: ignoring cache file {path}: {e}"),
        }
    }
    let shared = Arc::new(Shared {
        config,
        addr,
        specs,
        state: Mutex::new(State {
            next_job: 1,
            active: VecDeque::new(),
            queued_cells: 0,
            active_jobs: 0,
            jobs: HashMap::new(),
            cache,
            cells: CellCache::new(cell_capacity),
            counters: Counters::default(),
        }),
        work: Condvar::new(),
        shutdown: AtomicBool::new(false),
    });

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(listener, shared))
    };
    let workers = (0..pool)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(shared))
        })
        .collect();
    Ok(ServeHandle {
        shared,
        accept,
        workers,
    })
}

/// Flags shutdown and wakes both the pool (condvar) and the accept loop
/// (self-connection, since `accept` has no timeout in std).
fn begin_shutdown(shared: &Arc<Shared>) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.work.notify_all();
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        // Handlers are detached: they exit when their client disconnects or
        // after answering the terminal response of a dead daemon.
        std::thread::spawn(move || handle_connection(stream, shared));
    }
}

fn write_line(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut line = crate::protocol::to_line(response);
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    // See `ServeClient::connect`: without this, Nagle + delayed ACK cost
    // ~40 ms per request/response turnaround.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            // Clean EOF: the client is done.
            Ok(None) => break,
            Err(e) => {
                // Oversized, truncated or non-UTF-8 frames poison the
                // stream: answer with a structured error (best effort — the
                // peer may already be gone) and close the connection.
                shared.state.lock().unwrap().counters.malformed += 1;
                let _ = write_line(
                    &mut writer,
                    &Response::Error {
                        message: format!("bad frame: {e}"),
                    },
                );
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::from_line(&line) {
            Ok(request) => request,
            Err(message) => {
                // Malformed request: structured error, connection survives.
                shared.state.lock().unwrap().counters.malformed += 1;
                if write_line(&mut writer, &Response::Error { message }).is_err() {
                    break;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::SubmitSweep { spec, stream } => {
                handle_submit(&shared, &mut writer, &spec, stream)
            }
            Request::Status { job } => {
                write_line(&mut writer, &status_response(&shared, job)).is_ok()
            }
            Request::CancelJob { job } => {
                write_line(&mut writer, &cancel_job(&shared, job)).is_ok()
            }
            Request::Stats => write_line(&mut writer, &Response::Stats(stats(&shared))).is_ok(),
            Request::Shutdown => {
                let _ = write_line(&mut writer, &Response::ShuttingDown);
                begin_shutdown(&shared);
                false
            }
        };
        if !keep_going {
            break;
        }
    }
}

enum Admission {
    Enqueued,
    Coalesced,
    CacheHit(Arc<CachedReport>),
    /// Every cell hydrated from the cell cache: the submitting thread runs
    /// the finalizing post-pass itself, no pool involvement.
    Hydrated,
    Rejected {
        queued_cells: u64,
        limit: u64,
    },
}

/// Admits a submission and forwards its responses; returns false when the
/// connection died.
fn handle_submit(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    spec: &SweepSpec,
    wants_progress: bool,
) -> bool {
    if shared.shutdown.load(Ordering::SeqCst) {
        return write_line(
            writer,
            &Response::Error {
                message: "server is shutting down".to_string(),
            },
        )
        .is_ok();
    }
    let resolved = match spec.resolve() {
        Ok(resolved) => resolved,
        Err(message) => {
            return write_line(writer, &Response::Error { message }).is_ok();
        }
    };
    let num_sockets = shared.config.topology.num_sockets();
    // Fingerprinting may build workload specs (warming the shared spec
    // cache for the run itself) — do it outside the state lock.
    let key = resolved.fingerprint(&shared.specs, num_sockets);
    let (tx, rx) = channel::<Response>();

    // Fast path: coalesce onto an identical in-flight job or serve a
    // repeat from the sweep-level report cache, without planning anything.
    let fast = {
        let mut state = shared.state.lock().unwrap();
        fast_admit(&mut state, key, &tx, wants_progress)
    };
    if let Some((job_id, admission)) = fast {
        return respond(shared, writer, job_id, admission, rx);
    }

    // Novel sweep shape: materialize the plan and the per-cell content
    // fingerprints (both potentially expensive — also outside the lock).
    let plan = Arc::new(
        resolved
            .experiment(shared.config.topology.clone(), Arc::clone(&shared.specs))
            .plan(),
    );
    let cell_keys = resolved.cell_keys(&shared.specs, num_sockets);
    debug_assert_eq!(cell_keys.len(), plan.num_jobs());

    let (job_id, admission) = {
        let mut state = shared.state.lock().unwrap();
        // Close the race with an identical submission admitted while we
        // were planning.
        if let Some(fast) = fast_admit(&mut state, key, &tx, wants_progress) {
            fast
        } else if state.active_jobs >= shared.config.max_active_jobs {
            state.counters.rejected += 1;
            (
                0,
                Admission::Rejected {
                    queued_cells: state.queued_cells as u64,
                    limit: shared.config.max_queued_cells as u64,
                },
            )
        } else {
            // Hydrate every cell some earlier sweep already produced; only
            // the novel ones go to the pool.
            let mut outcomes: Vec<Option<CellOutcome>> = Vec::with_capacity(cell_keys.len());
            let mut novel: Vec<usize> = Vec::new();
            for (index, &cell_key) in cell_keys.iter().enumerate() {
                match state.cells.lookup(cell_key) {
                    Some(outcome) => outcomes.push(Some(outcome)),
                    None => {
                        outcomes.push(None);
                        novel.push(index);
                    }
                }
            }
            if state.queued_cells + novel.len() > shared.config.max_queued_cells {
                state.counters.rejected += 1;
                (
                    0,
                    Admission::Rejected {
                        queued_cells: state.queued_cells as u64,
                        limit: shared.config.max_queued_cells as u64,
                    },
                )
            } else {
                let hydrated = cell_keys.len() - novel.len();
                let fully_hydrated = novel.is_empty();
                let pending: VecDeque<Vec<usize>> = novel
                    .chunks(shared.config.batch_cells)
                    .map(<[usize]>::to_vec)
                    .collect();
                let id = state.next_job;
                state.next_job += 1;
                // The one report-cache miss of this submission: counted when
                // the job actually executes, so racing identical submissions
                // (which coalesce or hit) keep misses == executed sweeps.
                state.cache.note_miss();
                state.counters.submitted += 1;
                state.counters.hydrated_cells += hydrated as u64;
                state.active_jobs += 1;
                state.queued_cells += novel.len();
                let total = cell_keys.len();
                state.jobs.insert(
                    id,
                    Job {
                        key,
                        state: if fully_hydrated {
                            JobState::Running
                        } else {
                            JobState::Queued
                        },
                        completed: hydrated,
                        total,
                        plan: Some(Arc::clone(&plan)),
                        cell_keys,
                        outcomes,
                        pending,
                        remaining: novel.len(),
                        executed: 0,
                        hydrated,
                        result: None,
                        subscribers: vec![Subscriber { tx, wants_progress }],
                    },
                );
                if fully_hydrated {
                    (id, Admission::Hydrated)
                } else {
                    state.active.push_back(id);
                    shared.work.notify_all();
                    (id, Admission::Enqueued)
                }
            }
        }
    };
    respond(shared, writer, job_id, admission, rx)
}

/// The lock-held fast admission paths: coalescing and the sweep-level
/// report cache. Runs twice per novel submission (before and after the
/// expensive planning step), so it revalidates rather than looks up — the
/// single miss is counted where the executing job is created.
fn fast_admit(
    state: &mut State,
    key: u64,
    tx: &Sender<Response>,
    wants_progress: bool,
) -> Option<(u64, Admission)> {
    // 1) Coalesce onto an identical queued/running job: it executes once,
    //    every subscriber gets the same bytes.
    let in_flight = state
        .jobs
        .iter()
        .filter(|(_, j)| j.key == key && matches!(j.state, JobState::Queued | JobState::Running))
        .map(|(&id, _)| id)
        .next();
    if let Some(id) = in_flight {
        state.counters.coalesced += 1;
        let job = state.jobs.get_mut(&id).unwrap();
        job.subscribers.push(Subscriber {
            tx: tx.clone(),
            wants_progress,
        });
        return Some((id, Admission::Coalesced));
    }
    // 2) Serve a repeat from the report cache without executing.
    let report = state.cache.revalidate(key)?;
    let id = state.next_job;
    state.next_job += 1;
    let total = report.total_cells;
    state.jobs.insert(
        id,
        Job {
            key,
            state: JobState::Done,
            completed: total,
            total,
            plan: None,
            cell_keys: Vec::new(),
            outcomes: Vec::new(),
            pending: VecDeque::new(),
            remaining: 0,
            executed: 0,
            hydrated: 0,
            result: Some(Arc::clone(&report)),
            subscribers: Vec::new(),
        },
    );
    Some((id, Admission::CacheHit(report)))
}

/// Writes the admission outcome and forwards the job's responses; returns
/// false when the connection died.
fn respond(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    job_id: u64,
    admission: Admission,
    rx: Receiver<Response>,
) -> bool {
    match admission {
        Admission::Rejected {
            queued_cells,
            limit,
        } => write_line(
            writer,
            &Response::Overloaded {
                queued_cells,
                limit,
            },
        )
        .is_ok(),
        Admission::CacheHit(report) => {
            if write_line(
                writer,
                &Response::Submitted {
                    job: job_id,
                    cached: true,
                },
            )
            .is_err()
            {
                return false;
            }
            write_line(
                writer,
                &Response::Report {
                    job: job_id,
                    cache_hit: true,
                    executed_cells: 0,
                    hydrated_cells: 0,
                    report_json: report.bytes.clone(),
                },
            )
            .is_ok()
        }
        Admission::Hydrated => {
            let wrote = write_line(
                writer,
                &Response::Submitted {
                    job: job_id,
                    cached: false,
                },
            )
            .is_ok();
            // Finalize even if the submitter vanished, so the assembled
            // sweep still lands in the report cache.
            finalize_job(shared, job_id);
            wrote && forward(writer, rx)
        }
        Admission::Coalesced | Admission::Enqueued => {
            if write_line(
                writer,
                &Response::Submitted {
                    job: job_id,
                    cached: false,
                },
            )
            .is_err()
            {
                return false;
            }
            forward(writer, rx)
        }
    }
}

/// Forwards progress + terminal responses from the job's channel. The
/// sender side is dropped once the job reaches a terminal state, ending the
/// iteration even if we somehow miss a terminal message.
fn forward(writer: &mut TcpStream, rx: Receiver<Response>) -> bool {
    for response in rx {
        let terminal = matches!(
            response,
            Response::Report { .. } | Response::Error { .. } | Response::Cancelled { .. }
        );
        if write_line(writer, &response).is_err() {
            return false;
        }
        if terminal {
            break;
        }
    }
    true
}

fn status_response(shared: &Arc<Shared>, job: u64) -> Response {
    let state = shared.state.lock().unwrap();
    match state.jobs.get(&job) {
        Some(j) => Response::JobStatus {
            job,
            state: j.state.label().to_string(),
            completed: j.completed as u64,
            total: j.total as u64,
        },
        None => Response::Error {
            message: format!("unknown job {job}"),
        },
    }
}

fn cancel_job(shared: &Arc<Shared>, job: u64) -> Response {
    let mut state = shared.state.lock().unwrap();
    let Some(j) = state.jobs.get_mut(&job) else {
        return Response::Error {
            message: format!("unknown job {job}"),
        };
    };
    match j.state {
        JobState::Queued | JobState::Running => {
            j.state = JobState::Cancelled;
            // Free the cells still queued; batches already taken by a
            // worker stop at its next per-cell state check (and whatever it
            // executed meanwhile still feeds the cell cache).
            let freed: usize = j.pending.iter().map(Vec::len).sum();
            j.pending.clear();
            for sub in j.subscribers.drain(..) {
                let _ = sub.tx.send(Response::Cancelled { job });
            }
            state.queued_cells -= freed;
            state.active.retain(|&id| id != job);
            state.active_jobs -= 1;
            state.counters.cancelled += 1;
            Response::Cancelled { job }
        }
        other => Response::Error {
            message: format!(
                "job {job} is {}; only queued or running jobs can be cancelled",
                other.label()
            ),
        },
    }
}

fn stats(shared: &Arc<Shared>) -> ServerStats {
    let state = shared.state.lock().unwrap();
    ServerStats {
        jobs_submitted: state.counters.submitted,
        jobs_coalesced: state.counters.coalesced,
        jobs_completed: state.counters.completed,
        jobs_cancelled: state.counters.cancelled,
        jobs_failed: state.counters.failed,
        jobs_rejected: state.counters.rejected,
        requests_malformed: state.counters.malformed,
        executed_cells_total: state.counters.executed_cells,
        cells_hydrated_total: state.counters.hydrated_cells,
        report_cache_entries: state.cache.len() as u64,
        report_cache_capacity: state.cache.capacity() as u64,
        report_cache_hits: state.cache.hits(),
        report_cache_misses: state.cache.misses(),
        report_cache_evictions: state.cache.evictions(),
        cell_cache_entries: state.cells.len() as u64,
        cell_cache_capacity: state.cells.capacity() as u64,
        cell_cache_hits: state.cells.hits(),
        cell_cache_misses: state.cells.misses(),
        cell_cache_evictions: state.cells.evictions(),
        pool_workers: shared.config.pool as u64,
        spec_cache_builds: shared.specs.builds() as u64,
        spec_cache_hits: shared.specs.hits() as u64,
        spec_cache_entries: shared.specs.len() as u64,
    }
}

/// One pool worker: takes one batch of cells from the job at the front of
/// the round-robin rotation, executes them on a worker-owned executor
/// (rebuilt only when the plan changes), and finalizes whichever job it
/// resolves the last cell of.
fn worker_loop(shared: Arc<Shared>) {
    let mut executor_cache: Option<(Arc<SweepPlan>, Box<dyn Executor>)> = None;
    loop {
        let (job_id, plan, batch) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    drain_on_shutdown(&mut state);
                    return;
                }
                let Some(id) = state.active.pop_front() else {
                    state = shared.work.wait(state).unwrap();
                    continue;
                };
                let job = state.jobs.get_mut(&id).expect("active job must exist");
                let Some(batch) = job.pending.pop_front() else {
                    // Defensive: a job with nothing pending leaves the
                    // rotation.
                    continue;
                };
                if job.state == JobState::Queued {
                    job.state = JobState::Running;
                }
                let plan = Arc::clone(job.plan.as_ref().expect("executable job has a plan"));
                if !job.pending.is_empty() {
                    // Fair rotation: one batch per turn, then back of the
                    // line so no sweep starves behind a bigger one.
                    state.active.push_back(id);
                }
                state.queued_cells -= batch.len();
                break (id, plan, batch);
            }
        };

        let stale = match &executor_cache {
            Some((cached, _)) => !Arc::ptr_eq(cached, &plan),
            None => true,
        };
        if stale {
            executor_cache = Some((Arc::clone(&plan), plan.executor()));
        }
        let executor: &dyn Executor = executor_cache.as_ref().unwrap().1.as_ref();

        let mut finished = false;
        for index in batch {
            let labels = plan.job_labels(index);
            let repetition = plan.job_at(index).repetition;
            let pending_key = {
                let mut state = shared.state.lock().unwrap();
                let job = state.jobs.get(&job_id).expect("dispatched job must exist");
                if job.state != JobState::Running {
                    // Cancelled (or failed by shutdown): the rest of the
                    // batch is moot.
                    break;
                }
                let cell_key = job.cell_keys[index];
                // Another job may have executed this very cell since
                // admission — resolve it from the cache instead.
                match state.cells.peek(cell_key) {
                    Some(outcome) => {
                        finished = record_cell(
                            &mut state, job_id, index, outcome, false, &labels, repetition,
                        );
                        None
                    }
                    None => Some(cell_key),
                }
            };
            if let Some(cell_key) = pending_key {
                let outcome = plan.run_cell(index, executor);
                let mut state = shared.state.lock().unwrap();
                // Executed outcomes always feed the cell cache, even when
                // the job was cancelled mid-cell — the work is done either
                // way, so future sweeps may as well share it.
                state.cells.insert(cell_key, outcome.clone());
                let running = state
                    .jobs
                    .get(&job_id)
                    .is_some_and(|j| j.state == JobState::Running);
                if running {
                    finished = record_cell(
                        &mut state, job_id, index, outcome, true, &labels, repetition,
                    );
                }
            }
            if finished {
                break;
            }
        }
        if finished {
            finalize_job(&shared, job_id);
        }
    }
}

/// Records one resolved cell of a running job under the state lock: stores
/// the outcome, advances progress (fanning out `Progress` lines to
/// streaming subscribers), and reports whether the job just resolved its
/// last cell — the caller then finalizes outside the lock.
fn record_cell(
    state: &mut State,
    job_id: u64,
    index: usize,
    outcome: CellOutcome,
    executed: bool,
    labels: &(String, String, String),
    repetition: usize,
) -> bool {
    if executed {
        state.counters.executed_cells += 1;
    } else {
        state.counters.hydrated_cells += 1;
    }
    let job = state
        .jobs
        .get_mut(&job_id)
        .expect("recorded job must exist");
    job.outcomes[index] = Some(outcome);
    job.completed += 1;
    job.remaining -= 1;
    if executed {
        job.executed += 1;
    } else {
        job.hydrated += 1;
    }
    for sub in job.subscribers.iter().filter(|s| s.wants_progress) {
        let _ = sub.tx.send(Response::Progress {
            job: job_id,
            completed: job.completed as u64,
            total: job.total as u64,
            application: labels.0.clone(),
            policy: labels.2.clone(),
            repetition: repetition as u64,
        });
    }
    job.remaining == 0
}

/// Assembles and publishes a finished job's report: the deterministic keyed
/// post-pass over hydrated + executed outcomes, serialized once, stored in
/// the sweep-level report cache and handed to every subscriber. Called by
/// whichever thread resolves the job's last cell (a pool worker, or the
/// submitting handler when every cell hydrated at admission).
fn finalize_job(shared: &Arc<Shared>, job_id: u64) {
    let (plan, outcomes, key, executed, hydrated, total) = {
        let mut state = shared.state.lock().unwrap();
        let Some(job) = state.jobs.get_mut(&job_id) else {
            return;
        };
        if job.state != JobState::Running || job.remaining != 0 {
            return;
        }
        let plan = Arc::clone(job.plan.as_ref().expect("executable job has a plan"));
        let outcomes: Vec<CellOutcome> = job
            .outcomes
            .iter_mut()
            .map(|slot| slot.take().expect("finished job has every outcome"))
            .collect();
        (
            plan,
            outcomes,
            job.key,
            job.executed,
            job.hydrated,
            job.total,
        )
    };

    // The post-pass and serialization run outside the lock; both are
    // deterministic functions of the keyed outcomes, so the bytes are
    // identical to a direct `SweepDriver::execute` of the same plan.
    let report = plan.assemble_report(outcomes, shared.config.pool, std::time::Duration::ZERO);
    let bytes = report.to_json_string();

    let mut state = shared.state.lock().unwrap();
    let cached = Arc::new(CachedReport {
        bytes,
        executed_cells: executed,
        total_cells: total,
    });
    state.cache.insert(key, Arc::clone(&cached));
    let Some(job) = state.jobs.get_mut(&job_id) else {
        return;
    };
    if job.state != JobState::Running {
        // Cancelled (or failed) while assembling: the bytes still went
        // into the report cache, but nobody is listening any more.
        return;
    }
    job.state = JobState::Done;
    job.completed = job.total;
    job.result = Some(Arc::clone(&cached));
    for sub in job.subscribers.drain(..) {
        let _ = sub.tx.send(Response::Report {
            job: job_id,
            cache_hit: false,
            executed_cells: executed as u64,
            hydrated_cells: hydrated as u64,
            report_json: cached.bytes.clone(),
        });
    }
    state.counters.completed += 1;
    state.active_jobs -= 1;
}

/// Fails everything still queued or running when the daemon stops, so
/// blocked submitters get a terminal response instead of hanging. Safe to
/// call from every pool worker: only non-terminal jobs are touched, so
/// repeated calls are no-ops.
fn drain_on_shutdown(state: &mut State) {
    state.active.clear();
    state.queued_cells = 0;
    let doomed: Vec<u64> = state
        .jobs
        .iter()
        .filter(|(_, j)| matches!(j.state, JobState::Queued | JobState::Running))
        .map(|(&id, _)| id)
        .collect();
    for id in doomed {
        state.counters.failed += 1;
        state.active_jobs -= 1;
        let job = state.jobs.get_mut(&id).expect("doomed job must exist");
        job.state = JobState::Failed;
        job.pending.clear();
        for sub in job.subscribers.drain(..) {
            let _ = sub.tx.send(Response::Error {
                message: "server shut down before the job ran".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_binds_ephemeral_loopback() {
        let config = ServeConfig::default();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.topology.num_sockets(), 8);
        assert_eq!(config.cache_capacity, 64);
        assert_eq!(config.cell_capacity, 4096);
        assert_eq!(config.pool, 1);
        assert_eq!(config.batch_cells, 4);
        assert_eq!(config.max_queued_cells, 4096);
        assert_eq!(config.max_active_jobs, 64);
        assert_eq!(config.cache_file, None);
    }

    #[test]
    fn job_states_have_stable_labels() {
        for (state, label) in [
            (JobState::Queued, "queued"),
            (JobState::Running, "running"),
            (JobState::Done, "done"),
            (JobState::Cancelled, "cancelled"),
            (JobState::Failed, "failed"),
        ] {
            assert_eq!(state.label(), label);
        }
    }
}
