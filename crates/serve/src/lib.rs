//! Sweep-as-a-service: a persistent daemon over the plan/execute engine.
//!
//! The ROADMAP's "millions of users" shape: instead of re-running a ~81 ms
//! Full sweep per query, a long-running [`server`] keeps one process-wide
//! [`numadag_kernels::SpecCache`] hot and caches finished work at two
//! granularities. Whole sweeps are content-addressed in an LRU
//! [`cache::ReportCache`] keyed by the canonical request fingerprint
//! (workload spec hashes × canonical policy labels × seed × backend × rep
//! count): a repeated request — however its policy strings are spelled —
//! is answered with the byte-identical cached report without executing
//! anything. Novel sweep *shapes* are decomposed into content-addressed
//! cells ([`protocol::cell_fingerprint`]) backed by an LRU
//! [`cache::CellCache`], so overlapping sweeps (added policy columns, app
//! subsets, extra repetitions) hydrate their shared cells and execute only
//! the genuinely new ones. The novel cells are batched onto a fair
//! round-robin queue drained by a pool of worker threads (`--pool N`), so
//! a tiny sweep completes while a Full sweep is in flight; admission
//! quotas bounce excess load with a structured `Overloaded` response, and
//! queued or running jobs can be cancelled, freeing their queued cells.
//!
//! The wire format ([`protocol`]) is newline-delimited JSON whose sweep
//! spec reuses the CLI string grammar verbatim, so the committed
//! `BENCH_figure1_*.json` baselines regenerate bit-exactly through the
//! service path:
//!
//! ```no_run
//! use numadag_serve::client::ServeClient;
//! use numadag_serve::protocol::SweepSpec;
//! use numadag_serve::server::{serve, ServeConfig};
//!
//! let handle = serve(ServeConfig::default()).unwrap();
//! let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
//! let first = client.submit(SweepSpec::default(), false, |_| ()).unwrap();
//! let again = client.submit(SweepSpec::default(), false, |_| ()).unwrap();
//! assert!(again.cache_hit);
//! assert_eq!(first.report_json, again.report_json); // byte-identical
//! client.shutdown().unwrap();
//! handle.join();
//! ```
//!
//! Binaries: `numadag-serve` (the daemon) and `serve-client`
//! (submit/status/stats/cancel/shutdown, used by CI); `ablation serve-load`
//! in `numadag-bench` is the matching load generator.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CachedReport, CellCache, ReportCache};
pub use client::{ClientError, ServeClient, SubmitOutcome};
pub use protocol::{Request, ResolvedSweep, Response, ServerStats, SweepSpec};
pub use server::{serve, serve_with_specs, ServeConfig, ServeHandle};
