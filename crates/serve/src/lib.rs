//! Sweep-as-a-service: a persistent daemon over the plan/execute engine.
//!
//! The ROADMAP's "millions of users" shape: instead of re-running a ~81 ms
//! Full sweep per query, a long-running [`server`] keeps one process-wide
//! [`numadag_kernels::SpecCache`] hot, batches admitted jobs through one
//! shared [`numadag_runtime::SweepDriver`], and content-addresses finished
//! reports in an LRU [`cache::ReportCache`] keyed by the canonical request
//! fingerprint (workload spec hashes × canonical policy labels × seed ×
//! backend × rep count). A repeated request — however its policy strings are
//! spelled — is answered with the byte-identical cached report without
//! executing anything.
//!
//! The wire format ([`protocol`]) is newline-delimited JSON whose sweep
//! spec reuses the CLI string grammar verbatim, so the committed
//! `BENCH_figure1_*.json` baselines regenerate bit-exactly through the
//! service path:
//!
//! ```no_run
//! use numadag_serve::client::ServeClient;
//! use numadag_serve::protocol::SweepSpec;
//! use numadag_serve::server::{serve, ServeConfig};
//!
//! let handle = serve(ServeConfig::default()).unwrap();
//! let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
//! let first = client.submit(SweepSpec::default(), false, |_| ()).unwrap();
//! let again = client.submit(SweepSpec::default(), false, |_| ()).unwrap();
//! assert!(again.cache_hit);
//! assert_eq!(first.report_json, again.report_json); // byte-identical
//! client.shutdown().unwrap();
//! handle.join();
//! ```
//!
//! Binaries: `numadag-serve` (the daemon) and `serve-client`
//! (submit/status/stats/cancel/shutdown, used by CI); `ablation serve-load`
//! in `numadag-bench` is the matching load generator.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CachedReport, ReportCache};
pub use client::{ClientError, ServeClient, SubmitOutcome};
pub use protocol::{Request, ResolvedSweep, Response, ServerStats, SweepSpec};
pub use server::{serve, serve_with_specs, ServeConfig, ServeHandle};
