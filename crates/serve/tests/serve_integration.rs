//! End-to-end tests of the sweep service over real TCP connections:
//! concurrent-client determinism, cache behaviour, malformed-request
//! survival, progress streaming and the byte-identity of service-path
//! reports with directly executed experiments.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use numadag_kernels::SpecCache;
use numadag_numa::Topology;
use numadag_runtime::SweepDriver;
use numadag_serve::client::{ClientError, ServeClient};
use numadag_serve::protocol::{Request, Response, SweepSpec, DEFAULT_POLICIES};
use numadag_serve::server::{serve, serve_with_specs, ServeConfig};

fn tiny_spec() -> SweepSpec {
    SweepSpec {
        apps: "jacobi,nstream".to_string(),
        ..SweepSpec::default()
    }
}

#[test]
fn concurrent_identical_submissions_execute_once_with_identical_bytes() {
    let handle = serve(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).unwrap();
                client.submit(tiny_spec(), false, |_| ()).unwrap()
            })
        })
        .collect();
    let outcomes: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let reference = &outcomes[0].report_json;
    assert!(!reference.is_empty());
    for outcome in &outcomes {
        assert_eq!(
            &outcome.report_json, reference,
            "every client must receive byte-identical report bytes"
        );
    }

    let mut client = ServeClient::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    // However the four submissions raced (coalesced onto the in-flight job
    // or served from the cache after it finished), the sweep executed once.
    assert_eq!(stats.jobs_submitted, 1, "identical sweeps execute once");
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.report_cache_misses, 1);
    assert_eq!(
        stats.jobs_coalesced + stats.report_cache_hits,
        3,
        "the other three submissions must not have executed"
    );
    let executed_once = stats.executed_cells_total;
    assert!(executed_once > 0);

    // A later repeat is a pure cache hit: no new cells execute.
    let again = client.submit(tiny_spec(), false, |_| ()).unwrap();
    assert!(again.cache_hit);
    assert_eq!(again.executed_cells, 0);
    assert_eq!(&again.report_json, reference);
    let stats = client.stats().unwrap();
    assert_eq!(stats.executed_cells_total, executed_once);
    assert_eq!(stats.jobs_submitted, 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn equivalent_policy_spellings_share_one_cache_entry() {
    let handle = serve(ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();

    let first = client
        .submit(
            SweepSpec {
                apps: "jacobi".to_string(),
                policies: "dfifo,rgp-las:scheme=rb,w=512,prop=repart,ep".to_string(),
                ..SweepSpec::default()
            },
            false,
            |_| (),
        )
        .unwrap();
    assert!(!first.cache_hit);

    // Same sweep with the tuning params reordered: canonical labels make it
    // the same fingerprint, hence a cache hit without executing.
    let second = client
        .submit(
            SweepSpec {
                apps: "jacobi".to_string(),
                policies: "dfifo,RGP+LAS:prop=repart,w=512,scheme=rb,ep".to_string(),
                ..SweepSpec::default()
            },
            false,
            |_| (),
        )
        .unwrap();
    assert!(
        second.cache_hit,
        "equivalent spellings must share one entry"
    );
    assert_eq!(second.report_json, first.report_json);

    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_submitted, 1);
    assert_eq!(stats.report_cache_entries, 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_requests_get_structured_errors_and_the_connection_survives() {
    let handle = serve(ServeConfig::default()).unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let recv = |reader: &mut BufReader<TcpStream>| {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Response::from_line(line.trim_end()).unwrap()
    };

    // Not JSON at all, an unknown envelope, and a bad spec field — each gets
    // a structured Error and the connection keeps working.
    for garbage in [
        "this is not json",
        r#"{"LaunchMissiles": {}}"#,
        r#"{"SubmitSweep": {"spec": {"scale": "huge"}}}"#,
    ] {
        writer.write_all(format!("{garbage}\n").as_bytes()).unwrap();
        match recv(&mut reader) {
            Response::Error { message } => assert!(!message.is_empty()),
            other => panic!("expected Error for {garbage:?}, got {other:?}"),
        }
    }

    // The same connection still serves valid requests.
    writer.write_all(b"\"Stats\"\n").unwrap();
    match recv(&mut reader) {
        Response::Stats(stats) => {
            // The bad-spec line parses as a request (the envelope is fine)
            // but fails resolution, so only two lines count as malformed.
            assert_eq!(stats.requests_malformed, 2);
            assert_eq!(stats.jobs_submitted, 0);
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn service_reports_match_directly_executed_experiments_byte_for_byte() {
    let specs = Arc::new(SpecCache::new());
    let handle = serve_with_specs(ServeConfig::default(), Arc::clone(&specs)).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
    let outcome = client.submit(tiny_spec(), false, |_| ()).unwrap();
    handle.shutdown();
    handle.join();

    let direct = tiny_spec().resolve().unwrap();
    let plan = direct
        .experiment(Topology::bullion_s16(), Arc::new(SpecCache::new()))
        .plan();
    let report = SweepDriver::new().parallelism(1).execute(&plan);
    assert_eq!(
        outcome.report_json,
        report.to_json_string(),
        "the service path must reproduce the direct path byte-for-byte"
    );
    assert_eq!(outcome.executed_cells as usize, report.cells.len());
}

#[test]
fn progress_streams_every_cell_to_subscribers_that_ask() {
    let handle = serve(ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();

    let mut seen = Vec::new();
    let outcome = client
        .submit(tiny_spec(), true, |progress| {
            if let Response::Progress {
                completed, total, ..
            } = progress
            {
                seen.push((*completed, *total));
            }
        })
        .unwrap();

    let total = tiny_spec().resolve().unwrap().total_cells() as u64;
    assert_eq!(seen.len() as u64, outcome.executed_cells);
    assert_eq!(seen.last().map(|&(c, _)| c), Some(total));
    assert!(seen.iter().all(|&(_, t)| t == total));

    // A non-streaming repeat must not receive Progress lines (the submit
    // helper errors on any unrequested Progress).
    let again = client.submit(tiny_spec(), false, |_| ()).unwrap();
    assert!(again.cache_hit);

    handle.shutdown();
    handle.join();
}

#[test]
fn status_tracks_jobs_and_cancel_rejects_finished_or_unknown_ones() {
    let handle = serve(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();

    match client.status(999) {
        Err(e) => assert!(e.to_string().contains("unknown job")),
        Ok(other) => panic!("expected an error, got {other:?}"),
    }

    let outcome = client.submit(tiny_spec(), false, |_| ()).unwrap();
    match client.status(outcome.job).unwrap() {
        Response::JobStatus {
            state,
            completed,
            total,
            ..
        } => {
            assert_eq!(state, "done");
            assert_eq!(completed, total);
        }
        other => panic!("expected JobStatus, got {other:?}"),
    }
    match client.cancel(outcome.job) {
        Err(e) => assert!(e.to_string().contains("can be cancelled")),
        Ok(other) => panic!("expected an error, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn cancelling_a_sweep_mid_flight_frees_its_queued_cells() {
    // A batch bigger than the busy sweep: the single worker takes the whole
    // busy sweep as one batch, so the doomed sweep deterministically stays
    // queued until the cancel lands.
    let handle = serve(ServeConfig {
        batch_cells: 1024,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // Occupy the pool with a slower sweep, confirmed running by its first
    // streamed Progress line.
    let busy_spec = SweepSpec {
        scale: "small".to_string(),
        reps: 3,
        ..SweepSpec::default()
    };
    let busy_total = busy_spec.resolve().unwrap().total_cells() as u64;
    let mut busy = ServeClient::connect(&addr).unwrap();
    busy.send(&Request::SubmitSweep {
        spec: busy_spec,
        stream: true,
    })
    .unwrap();
    let busy_job = match busy.recv().unwrap() {
        Response::Submitted { job, .. } => job,
        other => panic!("expected Submitted, got {other:?}"),
    };
    match busy.recv().unwrap() {
        Response::Progress { .. } => {}
        other => panic!("expected Progress, got {other:?}"),
    }

    // Another slow sweep (different seed, so no shared cells) enters the
    // round-robin rotation; cancel it long before it can finish.
    let doomed_spec = SweepSpec {
        scale: "small".to_string(),
        seed: 99,
        ..SweepSpec::default()
    };
    let doomed_total = doomed_spec.resolve().unwrap().total_cells() as u64;
    let mut doomed = ServeClient::connect(&addr).unwrap();
    doomed
        .send(&Request::SubmitSweep {
            spec: doomed_spec,
            stream: false,
        })
        .unwrap();
    let doomed_job = match doomed.recv().unwrap() {
        Response::Submitted { job, .. } => job,
        other => panic!("expected Submitted, got {other:?}"),
    };
    assert_ne!(doomed_job, busy_job);

    let mut canceller = ServeClient::connect(&addr).unwrap();
    match canceller.cancel(doomed_job).unwrap() {
        Response::Cancelled { job } => assert_eq!(job, doomed_job),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The blocked submitter receives the terminal Cancelled response.
    match doomed.recv().unwrap() {
        Response::Cancelled { job } => assert_eq!(job, doomed_job),
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // The busy sweep still finishes normally.
    loop {
        match busy.recv().unwrap() {
            Response::Progress { .. } => continue,
            Response::Report { cache_hit, .. } => {
                assert!(!cache_hit);
                break;
            }
            other => panic!("expected Progress or Report, got {other:?}"),
        }
    }

    let stats = canceller.stats().unwrap();
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.jobs_completed, 1);
    // Cancellation freed the doomed sweep's queued cells: far fewer cells
    // executed than the two sweeps would have taken together (the doomed
    // job ran at most the few batches dispatched before the cancel).
    assert!(
        stats.executed_cells_total < busy_total + doomed_total,
        "cancel must free queued cells ({} executed)",
        stats.executed_cells_total
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn overlapping_sweeps_hydrate_shared_cells_and_execute_only_novel_ones() {
    let handle = serve(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();

    // Seed the cell cache with the default all-apps sweep (4 policy columns
    // including the appended LAS baseline).
    let base = client.submit(SweepSpec::default(), false, |_| ()).unwrap();
    let base_resolved = SweepSpec::default().resolve().unwrap();
    assert!(!base.cache_hit);
    assert_eq!(base.executed_cells as usize, base_resolved.total_cells());
    assert_eq!(base.hydrated_cells, 0);

    // Adding one policy column executes exactly apps × reps novel cells;
    // every cell of the original columns hydrates from the cell cache.
    let wider_spec = SweepSpec {
        policies: format!("{DEFAULT_POLICIES},rgp-las:prop=repart"),
        ..SweepSpec::default()
    };
    let wider_resolved = wider_spec.resolve().unwrap();
    let wider = client.submit(wider_spec, false, |_| ()).unwrap();
    assert!(!wider.cache_hit, "a different sweep shape is not a repeat");
    let novel = wider_resolved.apps.len() * wider_resolved.reps;
    assert_eq!(wider.executed_cells as usize, novel);
    assert_eq!(
        wider.hydrated_cells as usize,
        wider_resolved.total_cells() - novel
    );

    // The report reassembled from hydrated + fresh cells is byte-identical
    // to executing the widened sweep directly.
    let direct_plan = wider_resolved
        .experiment(Topology::bullion_s16(), Arc::new(SpecCache::new()))
        .plan();
    let direct = SweepDriver::new().parallelism(1).execute(&direct_plan);
    assert_eq!(wider.report_json, direct.to_json_string());

    // An app subset of the cached sweep hydrates completely: a fresh job
    // id and report, zero executions.
    let subset_spec = SweepSpec {
        apps: "jacobi,nstream".to_string(),
        ..SweepSpec::default()
    };
    let subset_resolved = subset_spec.resolve().unwrap();
    let subset = client.submit(subset_spec, false, |_| ()).unwrap();
    assert!(!subset.cache_hit);
    assert_eq!(subset.executed_cells, 0, "every subset cell must hydrate");
    assert_eq!(
        subset.hydrated_cells as usize,
        subset_resolved.total_cells()
    );
    let direct_plan = subset_resolved
        .experiment(Topology::bullion_s16(), Arc::new(SpecCache::new()))
        .plan();
    let direct = SweepDriver::new().parallelism(1).execute(&direct_plan);
    assert_eq!(subset.report_json, direct.to_json_string());

    let stats = client.stats().unwrap();
    assert_eq!(
        stats.executed_cells_total as usize,
        base_resolved.total_cells() + novel
    );
    assert_eq!(
        stats.cells_hydrated_total,
        wider.hydrated_cells + subset.hydrated_cells
    );
    assert_eq!(
        stats.cell_cache_entries as usize,
        base_resolved.total_cells() + novel,
        "each executed cell is cached exactly once"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn pool_workers_keep_a_tiny_sweep_flowing_past_a_big_one() {
    let handle = serve(ServeConfig {
        pool: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // A slow sweep occupies the pool, confirmed running by its first
    // streamed Progress line. High reps keep it in flight long enough for
    // the tiny sweep to overtake it even in release builds.
    let mut big = ServeClient::connect(&addr).unwrap();
    big.send(&Request::SubmitSweep {
        spec: SweepSpec {
            scale: "small".to_string(),
            reps: 8,
            ..SweepSpec::default()
        },
        stream: true,
    })
    .unwrap();
    let big_job = match big.recv().unwrap() {
        Response::Submitted { job, .. } => job,
        other => panic!("expected Submitted, got {other:?}"),
    };
    match big.recv().unwrap() {
        Response::Progress { .. } => {}
        other => panic!("expected Progress, got {other:?}"),
    }

    // A tiny sweep submitted afterwards completes while the big one is
    // still in flight — round-robin batching, not FIFO job order.
    let mut small = ServeClient::connect(&addr).unwrap();
    let outcome = small.submit(tiny_spec(), false, |_| ()).unwrap();
    assert!(!outcome.cache_hit);
    assert!(outcome.executed_cells > 0);

    let mut observer = ServeClient::connect(&addr).unwrap();
    match observer.status(big_job).unwrap() {
        Response::JobStatus { state, .. } => {
            assert_eq!(
                state, "running",
                "the big sweep must still be in flight when the tiny one finishes"
            );
        }
        other => panic!("expected JobStatus, got {other:?}"),
    }
    assert_eq!(observer.stats().unwrap().pool_workers, 2);

    // The big sweep still completes normally.
    loop {
        match big.recv().unwrap() {
            Response::Progress { .. } => continue,
            Response::Report { cache_hit, .. } => {
                assert!(!cache_hit);
                break;
            }
            other => panic!("expected Progress or Report, got {other:?}"),
        }
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn submissions_bounce_with_overloaded_when_the_cell_quota_is_exceeded() {
    // A quota smaller than the default sweep's cell count: the all-apps
    // sweep bounces, a single-app sweep still fits.
    let handle = serve(ServeConfig {
        max_queued_cells: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();

    match client.submit(SweepSpec::default(), false, |_| ()) {
        Err(ClientError::Overloaded {
            queued_cells,
            limit,
        }) => {
            assert_eq!(queued_cells, 0);
            assert_eq!(limit, 4);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // The connection survives, and a sweep within the quota is admitted.
    let ok = client
        .submit(
            SweepSpec {
                apps: "jacobi".to_string(),
                ..SweepSpec::default()
            },
            false,
            |_| (),
        )
        .unwrap();
    assert!(!ok.cache_hit);
    assert_eq!(ok.executed_cells, 4);

    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.jobs_submitted, 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn the_report_cache_survives_a_daemon_restart_through_the_cache_file() {
    let dir = std::env::temp_dir().join(format!("numadag-serve-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_file = dir.join("reports.json").to_string_lossy().into_owned();
    let config = ServeConfig {
        cache_file: Some(cache_file.clone()),
        ..ServeConfig::default()
    };

    // First daemon lifetime: execute one sweep, snapshot on shutdown.
    let handle = serve(config.clone()).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
    let first = client.submit(tiny_spec(), false, |_| ()).unwrap();
    assert!(!first.cache_hit);
    assert!(first.executed_cells > 0);
    drop(client);
    handle.shutdown();
    handle.join();
    assert!(
        std::fs::metadata(&cache_file).is_ok(),
        "join() must write the snapshot"
    );

    // Second lifetime, same cache file: the sweep answers from the reloaded
    // cache, byte-identical, without executing a single cell.
    let handle = serve(config).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
    let again = client.submit(tiny_spec(), false, |_| ()).unwrap();
    assert!(again.cache_hit, "restarted daemon must remember the report");
    assert_eq!(again.executed_cells, 0);
    assert_eq!(again.report_json, first.report_json);
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_submitted, 0, "nothing may have executed");
    assert_eq!(stats.report_cache_hits, 1);
    drop(client);
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_frames_close_the_connection_cleanly_and_the_server_survives() {
    let handle = serve(ServeConfig::default()).unwrap();

    // Invalid UTF-8: the frame layer rejects it before request parsing. The
    // server answers with a structured error (best effort — the reset may
    // beat it) and closes; it must never panic.
    {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"\xff\xfe{not utf8}\n").unwrap();
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok() && !line.is_empty() {
            match Response::from_line(line.trim_end()).unwrap() {
                Response::Error { message } => assert!(message.contains("bad frame")),
                other => panic!("expected Error, got {other:?}"),
            }
        }
        // Either way the server hung up on us.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0);
    }

    // A line past the 64 MiB frame limit: same story, and the server must
    // not buffer it all first.
    {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let chunk = vec![b'a'; 1 << 20];
        for _ in 0..65 {
            if writer.write_all(&chunk).is_err() {
                break; // server already gave up on us, as it should
            }
        }
        let _ = writer.write_all(b"\n");
        let mut line = String::new();
        let _ = reader.read_line(&mut line); // error frame, or reset — both fine
    }

    // The daemon is still alive and serving.
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.requests_malformed >= 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn a_server_that_never_answers_times_out_instead_of_hanging() {
    // A bound listener that never accepts: connects succeed (kernel
    // backlog), but no byte ever comes back.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let mut client =
        ServeClient::connect_with_timeout(&addr, std::time::Duration::from_millis(300)).unwrap();
    let started = std::time::Instant::now();
    match client.stats() {
        Err(ClientError::Timeout) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "the deadline must actually bound the wait"
    );
    drop(listener);
}
