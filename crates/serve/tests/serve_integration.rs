//! End-to-end tests of the sweep service over real TCP connections:
//! concurrent-client determinism, cache behaviour, malformed-request
//! survival, progress streaming and the byte-identity of service-path
//! reports with directly executed experiments.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use numadag_kernels::SpecCache;
use numadag_numa::Topology;
use numadag_runtime::SweepDriver;
use numadag_serve::client::ServeClient;
use numadag_serve::protocol::{Request, Response, SweepSpec};
use numadag_serve::server::{serve, serve_with_specs, ServeConfig};

fn tiny_spec() -> SweepSpec {
    SweepSpec {
        apps: "jacobi,nstream".to_string(),
        ..SweepSpec::default()
    }
}

#[test]
fn concurrent_identical_submissions_execute_once_with_identical_bytes() {
    let handle = serve(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).unwrap();
                client.submit(tiny_spec(), false, |_| ()).unwrap()
            })
        })
        .collect();
    let outcomes: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let reference = &outcomes[0].report_json;
    assert!(!reference.is_empty());
    for outcome in &outcomes {
        assert_eq!(
            &outcome.report_json, reference,
            "every client must receive byte-identical report bytes"
        );
    }

    let mut client = ServeClient::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    // However the four submissions raced (coalesced onto the in-flight job
    // or served from the cache after it finished), the sweep executed once.
    assert_eq!(stats.jobs_submitted, 1, "identical sweeps execute once");
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.report_cache_misses, 1);
    assert_eq!(
        stats.jobs_coalesced + stats.report_cache_hits,
        3,
        "the other three submissions must not have executed"
    );
    let executed_once = stats.executed_cells_total;
    assert!(executed_once > 0);

    // A later repeat is a pure cache hit: no new cells execute.
    let again = client.submit(tiny_spec(), false, |_| ()).unwrap();
    assert!(again.cache_hit);
    assert_eq!(again.executed_cells, 0);
    assert_eq!(&again.report_json, reference);
    let stats = client.stats().unwrap();
    assert_eq!(stats.executed_cells_total, executed_once);
    assert_eq!(stats.jobs_submitted, 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn equivalent_policy_spellings_share_one_cache_entry() {
    let handle = serve(ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();

    let first = client
        .submit(
            SweepSpec {
                apps: "jacobi".to_string(),
                policies: "dfifo,rgp-las:scheme=rb,w=512,prop=repart,ep".to_string(),
                ..SweepSpec::default()
            },
            false,
            |_| (),
        )
        .unwrap();
    assert!(!first.cache_hit);

    // Same sweep with the tuning params reordered: canonical labels make it
    // the same fingerprint, hence a cache hit without executing.
    let second = client
        .submit(
            SweepSpec {
                apps: "jacobi".to_string(),
                policies: "dfifo,RGP+LAS:prop=repart,w=512,scheme=rb,ep".to_string(),
                ..SweepSpec::default()
            },
            false,
            |_| (),
        )
        .unwrap();
    assert!(
        second.cache_hit,
        "equivalent spellings must share one entry"
    );
    assert_eq!(second.report_json, first.report_json);

    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_submitted, 1);
    assert_eq!(stats.report_cache_entries, 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_requests_get_structured_errors_and_the_connection_survives() {
    let handle = serve(ServeConfig::default()).unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let recv = |reader: &mut BufReader<TcpStream>| {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Response::from_line(line.trim_end()).unwrap()
    };

    // Not JSON at all, an unknown envelope, and a bad spec field — each gets
    // a structured Error and the connection keeps working.
    for garbage in [
        "this is not json",
        r#"{"LaunchMissiles": {}}"#,
        r#"{"SubmitSweep": {"spec": {"scale": "huge"}}}"#,
    ] {
        writer.write_all(format!("{garbage}\n").as_bytes()).unwrap();
        match recv(&mut reader) {
            Response::Error { message } => assert!(!message.is_empty()),
            other => panic!("expected Error for {garbage:?}, got {other:?}"),
        }
    }

    // The same connection still serves valid requests.
    writer.write_all(b"\"Stats\"\n").unwrap();
    match recv(&mut reader) {
        Response::Stats(stats) => {
            // The bad-spec line parses as a request (the envelope is fine)
            // but fails resolution, so only two lines count as malformed.
            assert_eq!(stats.requests_malformed, 2);
            assert_eq!(stats.jobs_submitted, 0);
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn service_reports_match_directly_executed_experiments_byte_for_byte() {
    let specs = Arc::new(SpecCache::new());
    let handle = serve_with_specs(ServeConfig::default(), Arc::clone(&specs)).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
    let outcome = client.submit(tiny_spec(), false, |_| ()).unwrap();
    handle.shutdown();
    handle.join();

    let direct = tiny_spec().resolve().unwrap();
    let plan = direct
        .experiment(Topology::bullion_s16(), Arc::new(SpecCache::new()))
        .plan();
    let report = SweepDriver::new().parallelism(1).execute(&plan);
    assert_eq!(
        outcome.report_json,
        report.to_json_string(),
        "the service path must reproduce the direct path byte-for-byte"
    );
    assert_eq!(outcome.executed_cells as usize, report.cells.len());
}

#[test]
fn progress_streams_every_cell_to_subscribers_that_ask() {
    let handle = serve(ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();

    let mut seen = Vec::new();
    let outcome = client
        .submit(tiny_spec(), true, |progress| {
            if let Response::Progress {
                completed, total, ..
            } = progress
            {
                seen.push((*completed, *total));
            }
        })
        .unwrap();

    let total = tiny_spec().resolve().unwrap().total_cells() as u64;
    assert_eq!(seen.len() as u64, outcome.executed_cells);
    assert_eq!(seen.last().map(|&(c, _)| c), Some(total));
    assert!(seen.iter().all(|&(_, t)| t == total));

    // A non-streaming repeat must not receive Progress lines (the submit
    // helper errors on any unrequested Progress).
    let again = client.submit(tiny_spec(), false, |_| ()).unwrap();
    assert!(again.cache_hit);

    handle.shutdown();
    handle.join();
}

#[test]
fn status_tracks_jobs_and_cancel_rejects_finished_or_unknown_ones() {
    let handle = serve(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();

    match client.status(999) {
        Err(e) => assert!(e.to_string().contains("unknown job")),
        Ok(other) => panic!("expected an error, got {other:?}"),
    }

    let outcome = client.submit(tiny_spec(), false, |_| ()).unwrap();
    match client.status(outcome.job).unwrap() {
        Response::JobStatus {
            state,
            completed,
            total,
            ..
        } => {
            assert_eq!(state, "done");
            assert_eq!(completed, total);
        }
        other => panic!("expected JobStatus, got {other:?}"),
    }
    match client.cancel(outcome.job) {
        Err(e) => assert!(e.to_string().contains("only queued jobs")),
        Ok(other) => panic!("expected an error, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn queued_jobs_can_be_cancelled_while_the_worker_is_busy() {
    let handle = serve(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();

    // Occupy the worker with a slower sweep, confirmed running by its first
    // streamed Progress line.
    let mut busy = ServeClient::connect(&addr).unwrap();
    busy.send(&Request::SubmitSweep {
        spec: SweepSpec {
            scale: "small".to_string(),
            ..SweepSpec::default()
        },
        stream: true,
    })
    .unwrap();
    let busy_job = match busy.recv().unwrap() {
        Response::Submitted { job, .. } => job,
        other => panic!("expected Submitted, got {other:?}"),
    };
    match busy.recv().unwrap() {
        Response::Progress { .. } => {}
        other => panic!("expected Progress, got {other:?}"),
    }

    // A different sweep now queues behind it; cancel it while queued.
    let mut queued = ServeClient::connect(&addr).unwrap();
    queued
        .send(&Request::SubmitSweep {
            spec: tiny_spec(),
            stream: false,
        })
        .unwrap();
    let queued_job = match queued.recv().unwrap() {
        Response::Submitted { job, .. } => job,
        other => panic!("expected Submitted, got {other:?}"),
    };
    assert_ne!(queued_job, busy_job);

    let mut canceller = ServeClient::connect(&addr).unwrap();
    match canceller.cancel(queued_job).unwrap() {
        Response::Cancelled { job } => assert_eq!(job, queued_job),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The blocked submitter receives the terminal Cancelled response.
    match queued.recv().unwrap() {
        Response::Cancelled { job } => assert_eq!(job, queued_job),
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // The busy sweep still finishes normally.
    loop {
        match busy.recv().unwrap() {
            Response::Progress { .. } => continue,
            Response::Report { cache_hit, .. } => {
                assert!(!cache_hit);
                break;
            }
            other => panic!("expected Progress or Report, got {other:?}"),
        }
    }

    let stats = canceller.stats().unwrap();
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.jobs_completed, 1);

    handle.shutdown();
    handle.join();
}
