//! Traffic accounting: how many bytes were served locally vs. remotely.
//!
//! The whole point of the paper's techniques is to increase the fraction of
//! task input/output bytes that are served from the socket the task runs on.
//! [`TrafficStats`] is the ledger both executors write to, and the quantity
//! EXPERIMENTS.md reports next to the speedups.

use std::collections::BTreeMap;

use crate::ids::NodeId;
use crate::topology::DistanceMatrix;

/// Byte counters accumulated over an execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficStats {
    /// Bytes accessed from the node local to the executing core.
    pub local_bytes: u64,
    /// Bytes accessed from a remote node.
    pub remote_bytes: u64,
    /// Bytes whose placement happened via first touch during the execution
    /// (deferred allocations performed). These are charged as local because
    /// the touching socket becomes the home.
    pub deferred_allocated_bytes: u64,
    /// Per (source node, destination node) matrix of transferred bytes:
    /// `link[(from, to)]` = bytes read by cores of `to` from memory of `from`.
    link: BTreeMap<(usize, usize), u64>,
    /// Weighted sum of bytes × SLIT distance, to compute the average access
    /// distance.
    distance_weighted_bytes: u128,
}

impl TrafficStats {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access of `bytes` bytes by a core on `core_node` to data
    /// living on `data_node`, at SLIT `distance`.
    pub fn record_access(
        &mut self,
        core_node: NodeId,
        data_node: NodeId,
        distance: u32,
        bytes: u64,
    ) {
        if core_node == data_node {
            self.local_bytes += bytes;
        } else {
            self.remote_bytes += bytes;
        }
        *self
            .link
            .entry((data_node.index(), core_node.index()))
            .or_default() += bytes;
        self.distance_weighted_bytes += u128::from(bytes) * u128::from(distance);
    }

    /// [`TrafficStats::record_access`] minus the link-matrix update: only
    /// the scalar counters (local/remote bytes, distance-weighted bytes) are
    /// touched. Hot-loop variant — the per-access `BTreeMap` probe of the
    /// full method dominated the simulator's memory loop. Callers accumulate
    /// the link bytes densely on the side and fold them in once per run via
    /// [`TrafficStats::add_link_matrix`].
    #[inline]
    pub fn record_access_unlinked(
        &mut self,
        core_node: NodeId,
        data_node: NodeId,
        distance: u32,
        bytes: u64,
    ) {
        if core_node == data_node {
            self.local_bytes += bytes;
        } else {
            self.remote_bytes += bytes;
        }
        self.distance_weighted_bytes += u128::from(bytes) * u128::from(distance);
    }

    /// Folds a dense row-major `num_nodes × num_nodes` byte matrix into the
    /// link ledger: `matrix[from * num_nodes + to]` = bytes read by cores of
    /// `to` from memory of `from`. Zero entries are skipped, so the ledger
    /// ends up with exactly the keys per-access recording would have
    /// produced (every recorded access moves at least one byte).
    pub fn add_link_matrix(&mut self, matrix: &[u64], num_nodes: usize) {
        for (i, &bytes) in matrix.iter().enumerate() {
            if bytes > 0 {
                *self.link.entry((i / num_nodes, i % num_nodes)).or_default() += bytes;
            }
        }
    }

    /// Records a deferred allocation of `bytes` on the executing node.
    pub fn record_deferred_allocation(&mut self, bytes: u64) {
        self.deferred_allocated_bytes += bytes;
    }

    /// Total bytes accessed.
    pub fn total_bytes(&self) -> u64 {
        self.local_bytes + self.remote_bytes
    }

    /// Fraction of bytes served locally, in `[0, 1]`. Returns 1.0 when no
    /// traffic was recorded (vacuously all-local).
    pub fn local_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            1.0
        } else {
            self.local_bytes as f64 / total as f64
        }
    }

    /// Average SLIT distance of an accessed byte (10.0 = everything local).
    pub fn mean_access_distance(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            DistanceMatrix::LOCAL as f64
        } else {
            self.distance_weighted_bytes as f64 / total as f64
        }
    }

    /// Bytes read by cores of `to` from memory of `from`.
    pub fn link_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        self.link
            .get(&(from.index(), to.index()))
            .copied()
            .unwrap_or(0)
    }

    /// Bytes served by the memory of `node` (to any core).
    pub fn served_by(&self, node: NodeId) -> u64 {
        self.link
            .iter()
            .filter(|((from, _), _)| *from == node.index())
            .map(|(_, b)| *b)
            .sum()
    }

    /// Bytes consumed by cores of `node` (from any memory).
    pub fn consumed_by(&self, node: NodeId) -> u64 {
        self.link
            .iter()
            .filter(|((_, to), _)| *to == node.index())
            .map(|(_, b)| *b)
            .sum()
    }

    /// Iterates the link matrix entries as `((from, to), bytes)`, in
    /// deterministic key order. Exposed (with [`TrafficStats::from_parts`])
    /// so a ledger can cross a process boundary and be rebuilt bit-exactly.
    pub fn link_entries(&self) -> impl Iterator<Item = ((usize, usize), u64)> + '_ {
        self.link.iter().map(|(&k, &v)| (k, v))
    }

    /// The distance-weighted byte sum behind
    /// [`TrafficStats::mean_access_distance`].
    pub fn distance_weighted(&self) -> u128 {
        self.distance_weighted_bytes
    }

    /// Reconstructs a ledger from its exact parts — the inverse of reading
    /// the public counters, [`TrafficStats::link_entries`] and
    /// [`TrafficStats::distance_weighted`]. Used to ship execution reports
    /// across process boundaries without losing the private matrix or
    /// re-deriving counters (which would not round-trip: the recording
    /// methods couple them).
    pub fn from_parts(
        local_bytes: u64,
        remote_bytes: u64,
        deferred_allocated_bytes: u64,
        link: impl IntoIterator<Item = ((usize, usize), u64)>,
        distance_weighted_bytes: u128,
    ) -> Self {
        TrafficStats {
            local_bytes,
            remote_bytes,
            deferred_allocated_bytes,
            link: link.into_iter().collect(),
            distance_weighted_bytes,
        }
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.local_bytes += other.local_bytes;
        self.remote_bytes += other.remote_bytes;
        self.deferred_allocated_bytes += other.deferred_allocated_bytes;
        self.distance_weighted_bytes += other.distance_weighted_bytes;
        for (k, v) in &other.link {
            *self.link.entry(*k).or_default() += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_vacuously_local() {
        let s = TrafficStats::new();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.local_fraction(), 1.0);
        assert_eq!(s.mean_access_distance(), 10.0);
    }

    #[test]
    fn local_and_remote_are_separated() {
        let mut s = TrafficStats::new();
        s.record_access(NodeId(0), NodeId(0), 10, 1000);
        s.record_access(NodeId(0), NodeId(3), 27, 3000);
        assert_eq!(s.local_bytes, 1000);
        assert_eq!(s.remote_bytes, 3000);
        assert_eq!(s.total_bytes(), 4000);
        assert!((s.local_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_distance_weights_by_bytes() {
        let mut s = TrafficStats::new();
        s.record_access(NodeId(0), NodeId(0), 10, 100);
        s.record_access(NodeId(0), NodeId(1), 30, 100);
        assert!((s.mean_access_distance() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn link_matrix_tracks_direction() {
        let mut s = TrafficStats::new();
        // Core on node 2 reads from memory on node 5.
        s.record_access(NodeId(2), NodeId(5), 27, 500);
        assert_eq!(s.link_bytes(NodeId(5), NodeId(2)), 500);
        assert_eq!(s.link_bytes(NodeId(2), NodeId(5)), 0);
        assert_eq!(s.served_by(NodeId(5)), 500);
        assert_eq!(s.consumed_by(NodeId(2)), 500);
        assert_eq!(s.served_by(NodeId(2)), 0);
    }

    #[test]
    fn from_parts_round_trips_a_recorded_ledger() {
        let mut s = TrafficStats::new();
        s.record_access(NodeId(0), NodeId(0), 10, 1000);
        s.record_access(NodeId(2), NodeId(5), 27, 500);
        s.record_access(NodeId(1), NodeId(0), 15, 300);
        s.record_deferred_allocation(4096);
        let rebuilt = TrafficStats::from_parts(
            s.local_bytes,
            s.remote_bytes,
            s.deferred_allocated_bytes,
            s.link_entries(),
            s.distance_weighted(),
        );
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.mean_access_distance(), s.mean_access_distance());
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = TrafficStats::new();
        a.record_access(NodeId(0), NodeId(0), 10, 10);
        a.record_deferred_allocation(64);
        let mut b = TrafficStats::new();
        b.record_access(NodeId(1), NodeId(0), 21, 20);
        b.record_deferred_allocation(128);
        a.merge(&b);
        assert_eq!(a.local_bytes, 10);
        assert_eq!(a.remote_bytes, 20);
        assert_eq!(a.deferred_allocated_bytes, 192);
        assert_eq!(a.link_bytes(NodeId(0), NodeId(1)), 20);
    }
}
