//! # numadag-numa — NUMA machine substrate
//!
//! This crate models the non-uniform memory access (NUMA) machine that the
//! paper's evaluation ran on (an Atos Bull bullion S16, 8 sockets with
//! 4 cores each). The real hardware is not available in this reproduction,
//! so every property the scheduling policies care about is modelled
//! explicitly:
//!
//! * [`topology::Topology`] — sockets, cores, NUMA nodes and the distance
//!   matrix between nodes (ACPI-SLIT style, local = 10).
//! * [`memory::MemoryMap`] — page-granular placement of data regions onto
//!   NUMA nodes, including *first touch* and the paper's *deferred
//!   allocation* (a region is only placed once the task producing it has
//!   been scheduled).
//! * [`cost::CostModel`] — translates bytes moved across a given distance
//!   into simulated time, including a simple bandwidth-contention model.
//! * [`stats::TrafficStats`] — local/remote byte accounting, the quantity
//!   the paper's techniques try to optimise.
//!
//! The crate is deliberately free of any scheduling logic; it is the
//! substrate the task runtime (`numadag-runtime`) and the scheduling
//! policies (`numadag-core`) are built on.

#![warn(missing_docs)]

pub mod cost;
pub mod ids;
pub mod memory;
pub mod stats;
pub mod topology;

pub use cost::{CostModel, TransferTable as CostTransferTable};
pub use ids::{CoreId, NodeId, RegionId, SocketId};
pub use memory::{MemoryMap, Placement, RegionInfo};
pub use stats::TrafficStats;
pub use topology::{DistanceMatrix, Topology};
