//! Machine topology: sockets, cores and the NUMA distance matrix.
//!
//! The evaluation machine of the paper is an Atos Bull bullion S16 with
//! 8 sockets and 4 cores used per socket. bullion machines are built from
//! 2-socket modules glued together by a node controller (BCS), so the NUMA
//! distance between two sockets depends on whether they share a module.
//! [`Topology::bullion_s16`] models exactly that.

use crate::ids::{CoreId, NodeId, SocketId};

/// ACPI-SLIT style distance matrix between NUMA nodes.
///
/// The local distance is conventionally `10`; a value of `21` means an
/// access is 2.1 times as expensive as a local one.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n` matrix of relative distances.
    values: Vec<u32>,
}

impl DistanceMatrix {
    /// Local distance used by convention (ACPI SLIT).
    pub const LOCAL: u32 = 10;

    /// Builds a distance matrix from a row-major vector of `n * n` values.
    ///
    /// # Panics
    /// Panics if `values.len() != n * n`, if any diagonal element is not
    /// [`Self::LOCAL`], or if the matrix is not symmetric.
    pub fn from_rows(n: usize, values: Vec<u32>) -> Self {
        assert_eq!(values.len(), n * n, "distance matrix must be n*n");
        for i in 0..n {
            assert_eq!(
                values[i * n + i],
                Self::LOCAL,
                "diagonal of distance matrix must be the local distance"
            );
            for j in 0..n {
                assert_eq!(
                    values[i * n + j],
                    values[j * n + i],
                    "distance matrix must be symmetric"
                );
                assert!(
                    values[i * n + j] >= Self::LOCAL,
                    "remote distance cannot be smaller than the local distance"
                );
            }
        }
        DistanceMatrix { n, values }
    }

    /// The distinct distance values of the matrix, ascending.
    pub fn distinct_distances(&self) -> Vec<u32> {
        let mut distances = self.values.clone();
        distances.sort_unstable();
        distances.dedup();
        distances
    }

    /// A uniform matrix: every remote access has the same `remote` distance.
    pub fn uniform(n: usize, remote: u32) -> Self {
        assert!(remote >= Self::LOCAL);
        let mut values = vec![remote; n * n];
        for i in 0..n {
            values[i * n + i] = Self::LOCAL;
        }
        DistanceMatrix { n, values }
    }

    /// Number of NUMA nodes covered by this matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix covers zero nodes (never the case for a valid machine).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between two nodes.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.values[a.index() * self.n + b.index()]
    }

    /// Relative cost of an access from `a` to `b` compared to a local access
    /// (`1.0` for local).
    #[inline]
    pub fn relative_cost(&self, a: NodeId, b: NodeId) -> f64 {
        self.distance(a, b) as f64 / Self::LOCAL as f64
    }

    /// Largest distance in the matrix (the "diameter" of the machine).
    pub fn max_distance(&self) -> u32 {
        self.values.iter().copied().max().unwrap_or(Self::LOCAL)
    }

    /// Average remote distance (excluding the diagonal). Returns the local
    /// distance for single-node machines.
    pub fn mean_remote_distance(&self) -> f64 {
        if self.n <= 1 {
            return Self::LOCAL as f64;
        }
        let mut sum = 0u64;
        let mut count = 0u64;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    sum += u64::from(self.values[i * self.n + j]);
                    count += 1;
                }
            }
        }
        sum as f64 / count as f64
    }
}

/// Description of the machine: how many sockets, how many cores per socket,
/// and how far apart the NUMA nodes are.
///
/// The topology is immutable once built; runtimes and policies share it by
/// reference (it is cheap to clone as well).
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    num_sockets: usize,
    cores_per_socket: usize,
    distances: DistanceMatrix,
    name: String,
}

impl Topology {
    /// Builds a topology with an explicit distance matrix.
    ///
    /// # Panics
    /// Panics if the distance matrix size does not match `num_sockets`, or if
    /// either dimension is zero.
    pub fn new(
        name: impl Into<String>,
        num_sockets: usize,
        cores_per_socket: usize,
        distances: DistanceMatrix,
    ) -> Self {
        assert!(num_sockets > 0, "a machine needs at least one socket");
        assert!(cores_per_socket > 0, "a socket needs at least one core");
        assert_eq!(
            distances.len(),
            num_sockets,
            "distance matrix must have one row per socket"
        );
        Topology {
            num_sockets,
            cores_per_socket,
            distances,
            name: name.into(),
        }
    }

    /// The machine used in the paper's evaluation: an Atos Bull bullion S16
    /// configured with 8 sockets and 4 cores per socket (32 workers).
    ///
    /// bullion systems pair sockets into modules connected by an external
    /// node controller, so the distance is `10` locally, `15` to the sibling
    /// socket inside the same module and `27` across modules — mirroring the
    /// ~2.7× remote/local latency ratios reported for this class of machine.
    pub fn bullion_s16() -> Self {
        let n = 8;
        let mut values = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = if i == j {
                    DistanceMatrix::LOCAL
                } else if i / 2 == j / 2 {
                    15
                } else {
                    27
                };
            }
        }
        Topology::new(
            "bullion_s16 (8 sockets x 4 cores)",
            n,
            4,
            DistanceMatrix::from_rows(n, values),
        )
    }

    /// A commodity dual-socket server (distance 21 between the two sockets).
    pub fn two_socket(cores_per_socket: usize) -> Self {
        Topology::new(
            format!("2-socket x {cores_per_socket} cores"),
            2,
            cores_per_socket,
            DistanceMatrix::uniform(2, 21),
        )
    }

    /// A four-socket, fully connected server (uniform remote distance 21).
    pub fn four_socket(cores_per_socket: usize) -> Self {
        Topology::new(
            format!("4-socket x {cores_per_socket} cores"),
            4,
            cores_per_socket,
            DistanceMatrix::uniform(4, 21),
        )
    }

    /// A single-socket (UMA) machine; useful as a degenerate baseline where
    /// every policy must behave identically.
    pub fn uma(cores: usize) -> Self {
        Topology::new(
            format!("UMA x {cores} cores"),
            1,
            cores,
            DistanceMatrix::uniform(1, DistanceMatrix::LOCAL),
        )
    }

    /// A generic `sockets × cores` machine with uniform remote distance 21,
    /// used by the socket-count ablation.
    pub fn symmetric(sockets: usize, cores_per_socket: usize) -> Self {
        Topology::new(
            format!("{sockets}-socket x {cores_per_socket} cores"),
            sockets,
            cores_per_socket,
            DistanceMatrix::uniform(sockets, 21),
        )
    }

    /// A distributed machine of `nodes` cluster nodes, each a shared-memory
    /// NUMA box of `sockets_per_node` sockets: distance is `10` locally,
    /// `15` between sockets of the same node and `far` between sockets of
    /// different nodes.
    ///
    /// This is ROADMAP direction 2's "remote node is just a socket at a
    /// (configurable) large distance" model: the distance matrix is the only
    /// thing that changes, so every placement policy works across the
    /// cluster unmodified. `far` around `100` (10× local) approximates an
    /// RDMA-class interconnect; larger values push toward message-passing
    /// cost ratios.
    ///
    /// # Panics
    /// Panics if any dimension is zero or `far < 15` (a cluster link cannot
    /// beat the intra-node interconnect in this model).
    pub fn multi_node(
        nodes: usize,
        sockets_per_node: usize,
        cores_per_socket: usize,
        far: u32,
    ) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        assert!(sockets_per_node > 0, "a node needs at least one socket");
        assert!(
            far >= 15,
            "cross-node distance cannot be smaller than the intra-node distance"
        );
        let n = nodes * sockets_per_node;
        let mut values = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = if i == j {
                    DistanceMatrix::LOCAL
                } else if i / sockets_per_node == j / sockets_per_node {
                    15
                } else {
                    far
                };
            }
        }
        Topology::new(
            format!(
                "{nodes}-node cluster ({sockets_per_node} sockets x {cores_per_socket} cores, \
                 far={far})"
            ),
            n,
            cores_per_socket,
            DistanceMatrix::from_rows(n, values),
        )
    }

    /// Human-readable name of the preset.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sockets (== number of NUMA nodes).
    pub fn num_sockets(&self) -> usize {
        self.num_sockets
    }

    /// Number of NUMA nodes (1:1 with sockets in this model).
    pub fn num_nodes(&self) -> usize {
        self.num_sockets
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Total number of cores (workers).
    pub fn num_cores(&self) -> usize {
        self.num_sockets * self.cores_per_socket
    }

    /// Socket that owns a core. Cores are numbered socket-major:
    /// cores `0..cores_per_socket` live on socket 0, etc.
    #[inline]
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        debug_assert!(core.index() < self.num_cores());
        SocketId(core.index() / self.cores_per_socket)
    }

    /// NUMA node local to a core.
    #[inline]
    pub fn node_of(&self, core: CoreId) -> NodeId {
        self.socket_of(core).node()
    }

    /// The cores that belong to a socket, in increasing id order.
    pub fn cores_of(&self, socket: SocketId) -> impl Iterator<Item = CoreId> + '_ {
        debug_assert!(socket.index() < self.num_sockets);
        let start = socket.index() * self.cores_per_socket;
        (start..start + self.cores_per_socket).map(CoreId)
    }

    /// First core of a socket (convenient canonical representative).
    pub fn first_core_of(&self, socket: SocketId) -> CoreId {
        CoreId(socket.index() * self.cores_per_socket)
    }

    /// All sockets of the machine.
    pub fn sockets(&self) -> impl Iterator<Item = SocketId> {
        (0..self.num_sockets).map(SocketId)
    }

    /// All NUMA nodes of the machine.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_sockets).map(NodeId)
    }

    /// All cores of the machine.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId)
    }

    /// The distance matrix.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// NUMA distance between two nodes.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.distances.distance(a, b)
    }

    /// Relative access cost between the node local to `core` and `data` node.
    #[inline]
    pub fn relative_cost(&self, core: CoreId, data: NodeId) -> f64 {
        self.distances.relative_cost(self.node_of(core), data)
    }

    /// True if the machine has a single NUMA node (no NUMA effects possible).
    pub fn is_uma(&self) -> bool {
        self.num_sockets == 1
    }

    /// Nodes sorted by distance from `from` (closest first, `from` itself is
    /// always first). Used by policies that spill work to the nearest node.
    pub fn nodes_by_distance(&self, from: NodeId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.nodes().collect();
        nodes.sort_by_key(|&n| (self.distance(from, n), n.index()));
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bullion_dimensions() {
        let t = Topology::bullion_s16();
        assert_eq!(t.num_sockets(), 8);
        assert_eq!(t.cores_per_socket(), 4);
        assert_eq!(t.num_cores(), 32);
        assert!(!t.is_uma());
    }

    #[test]
    fn bullion_distance_structure() {
        let t = Topology::bullion_s16();
        // Local.
        assert_eq!(t.distance(NodeId(3), NodeId(3)), 10);
        // Same module (sockets 0 and 1 are paired; 2 and 3; ...).
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 15);
        assert_eq!(t.distance(NodeId(6), NodeId(7)), 15);
        // Cross module.
        assert_eq!(t.distance(NodeId(0), NodeId(2)), 27);
        assert_eq!(t.distance(NodeId(1), NodeId(7)), 27);
        // Symmetry.
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn socket_core_mapping_is_socket_major() {
        let t = Topology::bullion_s16();
        assert_eq!(t.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(3)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(4)), SocketId(1));
        assert_eq!(t.socket_of(CoreId(31)), SocketId(7));
        let cores: Vec<_> = t.cores_of(SocketId(2)).collect();
        assert_eq!(cores, vec![CoreId(8), CoreId(9), CoreId(10), CoreId(11)]);
        assert_eq!(t.first_core_of(SocketId(5)), CoreId(20));
    }

    #[test]
    fn every_core_maps_back_to_its_socket() {
        let t = Topology::bullion_s16();
        for s in t.sockets() {
            for c in t.cores_of(s) {
                assert_eq!(t.socket_of(c), s);
                assert_eq!(t.node_of(c), s.node());
            }
        }
    }

    #[test]
    fn uma_machine_has_unit_relative_cost() {
        let t = Topology::uma(4);
        assert!(t.is_uma());
        assert_eq!(t.num_cores(), 4);
        assert_eq!(t.relative_cost(CoreId(2), NodeId(0)), 1.0);
    }

    #[test]
    fn uniform_matrix_properties() {
        let d = DistanceMatrix::uniform(4, 21);
        assert_eq!(d.len(), 4);
        assert_eq!(d.distance(NodeId(0), NodeId(0)), 10);
        assert_eq!(d.distance(NodeId(0), NodeId(3)), 21);
        assert_eq!(d.max_distance(), 21);
        assert!((d.relative_cost(NodeId(1), NodeId(2)) - 2.1).abs() < 1e-12);
    }

    #[test]
    fn mean_remote_distance_bullion() {
        let t = Topology::bullion_s16();
        let m = t.distances().mean_remote_distance();
        // 1 sibling at 15 and 6 strangers at 27 per node.
        let expected = (15.0 + 6.0 * 27.0) / 7.0;
        assert!((m - expected).abs() < 1e-9);
    }

    #[test]
    fn nodes_by_distance_orders_local_first() {
        let t = Topology::bullion_s16();
        let order = t.nodes_by_distance(NodeId(2));
        assert_eq!(order[0], NodeId(2));
        assert_eq!(order[1], NodeId(3)); // sibling in the same module
        assert_eq!(order.len(), 8);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        DistanceMatrix::from_rows(2, vec![10, 21, 25, 10]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn bad_diagonal_rejected() {
        DistanceMatrix::from_rows(2, vec![12, 21, 21, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        Topology::new("bad", 2, 0, DistanceMatrix::uniform(2, 21));
    }

    #[test]
    fn symmetric_preset_scales() {
        for s in [2, 4, 8, 16] {
            let t = Topology::symmetric(s, 4);
            assert_eq!(t.num_sockets(), s);
            assert_eq!(t.num_cores(), 4 * s);
        }
    }

    #[test]
    fn multi_node_distance_structure() {
        // 2 cluster nodes of 2 sockets each, far link at 100.
        let t = Topology::multi_node(2, 2, 4, 100);
        assert_eq!(t.num_sockets(), 4);
        assert_eq!(t.num_cores(), 16);
        assert_eq!(t.distance(NodeId(0), NodeId(0)), 10);
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 15); // same cluster node
        assert_eq!(t.distance(NodeId(0), NodeId(2)), 100); // cross node
        assert_eq!(t.distance(NodeId(1), NodeId(3)), 100);
        assert_eq!(t.distance(NodeId(2), NodeId(3)), 15);
        assert!(t.name().contains("far=100"));
        // The matrix passes from_rows' symmetry/diagonal validation by
        // construction; nodes_by_distance keeps the sibling ahead of the
        // far nodes.
        let order = t.nodes_by_distance(NodeId(2));
        assert_eq!(&order[..2], &[NodeId(2), NodeId(3)]);
    }

    #[test]
    fn multi_node_with_one_socket_per_node_is_uniformly_far() {
        let t = Topology::multi_node(4, 1, 2, 200);
        assert_eq!(t.num_sockets(), 4);
        for a in t.nodes() {
            for b in t.nodes() {
                let expected = if a == b { 10 } else { 200 };
                assert_eq!(t.distance(a, b), expected);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cross-node distance")]
    fn multi_node_rejects_far_below_intra_node() {
        Topology::multi_node(2, 2, 1, 12);
    }
}
