//! Cost model: how long does it take to move bytes between a core and a
//! NUMA node, and how long does a task take overall.
//!
//! The discrete-event simulator in `numadag-runtime` charges every task
//!
//! ```text
//! duration = compute_time
//!          + Σ_over_accessed_bytes  bytes / effective_bandwidth(distance)
//! ```
//!
//! where the effective bandwidth degrades with NUMA distance and with the
//! number of tasks concurrently hammering the same memory node (a simple
//! M/M/1-style contention multiplier). The absolute numbers are arbitrary
//! simulation units; only the *ratios* matter for reproducing the paper's
//! figure, and those ratios are taken from typical measured local/remote
//! bandwidth and latency gaps on 8-socket glueless/node-controller machines.

use crate::ids::{CoreId, NodeId};
use crate::topology::{DistanceMatrix, Topology};

/// Parameters of the memory/compute cost model. Times are in abstract
/// "simulation nanoseconds"; bandwidths in bytes per simulation nanosecond.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Bandwidth, in bytes per ns, of a core streaming from its local node.
    pub local_bandwidth: f64,
    /// Fixed per-access latency charged once per region access, in ns, for a
    /// local access. Models the cost of the first cache miss burst.
    pub local_latency: f64,
    /// Exponent applied to the relative NUMA distance when degrading
    /// bandwidth: `bw(d) = local_bandwidth / (d/10)^bandwidth_exponent`.
    /// 1.0 means bandwidth degrades linearly with the SLIT distance.
    pub bandwidth_exponent: f64,
    /// Additional latency per unit of relative distance beyond local, in ns:
    /// `lat(d) = local_latency * (d/10)^latency_exponent`.
    pub latency_exponent: f64,
    /// Contention: each *additional* concurrent accessor of the same memory
    /// node multiplies effective transfer time by `1 + contention_factor`.
    pub contention_factor: f64,
    /// Time in ns to execute one abstract "work unit" of task compute.
    pub time_per_work_unit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Local streaming bandwidth of ~8 bytes/ns (8 GB/s per core) and a
        // ~100 ns local memory latency are in line with the Nehalem/Westmere
        // class sockets of the bullion S16. Remote accesses on a
        // node-controller machine lose roughly 2-3x in both latency and
        // bandwidth, which the SLIT distances (15 / 27) encode.
        CostModel {
            local_bandwidth: 8.0,
            local_latency: 100.0,
            bandwidth_exponent: 1.0,
            latency_exponent: 1.0,
            contention_factor: 0.25,
            time_per_work_unit: 1.0,
        }
    }
}

impl CostModel {
    /// A cost model with no NUMA penalty at all (remote behaves like local).
    /// Useful as a control: every policy should perform identically under it.
    pub fn flat() -> Self {
        CostModel {
            bandwidth_exponent: 0.0,
            latency_exponent: 0.0,
            contention_factor: 0.0,
            ..CostModel::default()
        }
    }

    /// A cost model with an exaggerated remote penalty, used in tests to make
    /// locality effects unmistakable.
    pub fn steep() -> Self {
        CostModel {
            bandwidth_exponent: 2.0,
            latency_exponent: 1.5,
            ..CostModel::default()
        }
    }

    /// Effective bandwidth (bytes per ns) for an access at SLIT `distance`.
    pub fn bandwidth(&self, distance: u32) -> f64 {
        let rel = distance as f64 / DistanceMatrix::LOCAL as f64;
        self.local_bandwidth / rel.powf(self.bandwidth_exponent)
    }

    /// Effective latency (ns) for an access at SLIT `distance`.
    pub fn latency(&self, distance: u32) -> f64 {
        let rel = distance as f64 / DistanceMatrix::LOCAL as f64;
        self.local_latency * rel.powf(self.latency_exponent)
    }

    /// Time (ns) to transfer `bytes` over a path with SLIT `distance`,
    /// ignoring contention.
    pub fn transfer_time(&self, bytes: u64, distance: u32) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency(distance) + bytes as f64 / self.bandwidth(distance)
    }

    /// Time (ns) to transfer `bytes` between `core` and data living on
    /// `node`, under `topology`.
    pub fn access_time(&self, topology: &Topology, core: CoreId, node: NodeId, bytes: u64) -> f64 {
        let d = topology.distance(topology.node_of(core), node);
        self.transfer_time(bytes, d)
    }

    /// Multiplier applied to memory time when `concurrent` tasks (including
    /// the one being charged) are simultaneously accessing the same node.
    pub fn contention_multiplier(&self, concurrent: usize) -> f64 {
        let extra = concurrent.saturating_sub(1) as f64;
        1.0 + self.contention_factor * extra
    }

    /// Time (ns) to execute `work_units` of pure compute.
    #[inline]
    pub fn compute_time(&self, work_units: f64) -> f64 {
        work_units * self.time_per_work_unit
    }

    /// Precomputes a [`TransferTable`] for every distance that occurs in
    /// `distances`. The table returns bit-identical times to
    /// [`CostModel::transfer_time`] without the two `powf` calls per lookup
    /// — those dominated the simulator's memory loop.
    pub fn transfer_table(&self, distances: &DistanceMatrix) -> TransferTable {
        let max = distances.max_distance() as usize;
        let mut lat = vec![f64::NAN; max + 1];
        let mut bw = vec![f64::NAN; max + 1];
        for d in distances.distinct_distances() {
            lat[d as usize] = self.latency(d);
            bw[d as usize] = self.bandwidth(d);
        }
        TransferTable { lat, bw }
    }

    /// Convenience: the ratio between the remote and local transfer time for
    /// a given byte count and distance. Used in tests and reports.
    pub fn remote_local_ratio(&self, bytes: u64, distance: u32) -> f64 {
        let local = self.transfer_time(bytes, DistanceMatrix::LOCAL);
        if local == 0.0 {
            return 1.0;
        }
        self.transfer_time(bytes, distance) / local
    }
}

/// Per-distance latency and bandwidth memoized from a [`CostModel`] over a
/// concrete [`DistanceMatrix`] (see [`CostModel::transfer_table`]).
///
/// `transfer_time` performs the same float operations on the same cached
/// values as the model itself — `lat(d) + bytes / bw(d)` — so results are
/// bit-identical, which the byte-compared `BENCH_*.json` baselines rely on.
#[derive(Clone, Debug, Default)]
pub struct TransferTable {
    /// `latency(d)` indexed by distance; NaN at distances absent from the
    /// matrix the table was built for.
    lat: Vec<f64>,
    /// `bandwidth(d)` indexed by distance, NaN likewise.
    bw: Vec<f64>,
}

impl TransferTable {
    /// Time (ns) to transfer `bytes` over a path with SLIT `distance`,
    /// ignoring contention. Exactly [`CostModel::transfer_time`] for every
    /// distance of the matrix the table was built from.
    ///
    /// # Panics
    /// Panics (index out of bounds) on a distance the matrix did not
    /// contain.
    #[inline]
    pub fn transfer_time(&self, bytes: u64, distance: u32) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.lat[distance as usize] + bytes as f64 / self.bw[distance as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn local_access_uses_base_numbers() {
        let m = CostModel::default();
        assert!((m.bandwidth(10) - 8.0).abs() < 1e-12);
        assert!((m.latency(10) - 100.0).abs() < 1e-12);
        // 8000 bytes at 8 B/ns = 1000 ns, plus 100 ns latency.
        assert!((m.transfer_time(8000, 10) - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn remote_access_is_slower() {
        let m = CostModel::default();
        let local = m.transfer_time(1 << 20, 10);
        let sibling = m.transfer_time(1 << 20, 15);
        let far = m.transfer_time(1 << 20, 27);
        assert!(local < sibling);
        assert!(sibling < far);
        // With linear exponents the far/local ratio approaches 2.7 for large
        // transfers.
        assert!((m.remote_local_ratio(1 << 30, 27) - 2.7).abs() < 0.01);
    }

    #[test]
    fn flat_model_has_no_penalty() {
        let m = CostModel::flat();
        assert_eq!(m.transfer_time(4096, 10), m.transfer_time(4096, 27));
        assert_eq!(m.contention_multiplier(16), 1.0);
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let m = CostModel::default();
        assert_eq!(m.transfer_time(0, 27), 0.0);
    }

    #[test]
    fn contention_grows_linearly() {
        let m = CostModel::default();
        assert_eq!(m.contention_multiplier(0), 1.0);
        assert_eq!(m.contention_multiplier(1), 1.0);
        assert!((m.contention_multiplier(2) - 1.25).abs() < 1e-12);
        assert!((m.contention_multiplier(5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn access_time_respects_topology() {
        let t = Topology::bullion_s16();
        let m = CostModel::default();
        // Core 0 is on socket 0; node 0 is local, node 7 is cross-module.
        let local = m.access_time(&t, CoreId(0), NodeId(0), 1 << 16);
        let remote = m.access_time(&t, CoreId(0), NodeId(7), 1 << 16);
        assert!(remote > 2.0 * local);
    }

    #[test]
    fn compute_time_scales_with_work() {
        let m = CostModel::default();
        assert_eq!(m.compute_time(0.0), 0.0);
        assert_eq!(m.compute_time(250.0), 250.0);
        let m2 = CostModel {
            time_per_work_unit: 2.5,
            ..CostModel::default()
        };
        assert_eq!(m2.compute_time(100.0), 250.0);
    }

    #[test]
    fn steep_model_penalises_more_than_default() {
        let base = CostModel::default();
        let steep = CostModel::steep();
        assert!(
            steep.remote_local_ratio(1 << 20, 27) > base.remote_local_ratio(1 << 20, 27),
            "steep model must have a larger remote/local gap"
        );
    }
}
