//! Strongly-typed identifiers for hardware resources and data regions.
//!
//! Using newtypes instead of bare `usize` prevents the classic bug of
//! passing a core index where a socket index is expected (they often have
//! the same small numeric values).

use std::fmt;

/// Identifier of a socket (physical package). In this model each socket is
/// also one NUMA node, mirroring the machine used in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SocketId(pub usize);

/// Identifier of a NUMA memory node. On the modelled machine there is a
/// one-to-one mapping between sockets and NUMA nodes, but the types are kept
/// separate so topologies with multiple nodes per socket (e.g. sub-NUMA
/// clustering) can be expressed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub usize);

/// Identifier of a hardware core (a worker thread in the runtime).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(pub usize);

/// Identifier of a data region (a contiguous block of bytes that tasks
/// declare as `in`/`out`/`inout` dependences, e.g. one tile of a blocked
/// matrix).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RegionId(pub usize);

macro_rules! impl_id {
    ($t:ident, $prefix:expr) => {
        impl $t {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }
        impl From<usize> for $t {
            fn from(v: usize) -> Self {
                $t(v)
            }
        }
        impl From<$t> for usize {
            fn from(v: $t) -> usize {
                v.0
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_id!(SocketId, "S");
impl_id!(NodeId, "N");
impl_id!(CoreId, "C");
impl_id!(RegionId, "R");

impl SocketId {
    /// The NUMA node local to this socket under the 1:1 socket/node mapping.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

impl NodeId {
    /// The socket local to this NUMA node under the 1:1 socket/node mapping.
    #[inline]
    pub fn socket(self) -> SocketId {
        SocketId(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(SocketId(3).to_string(), "S3");
        assert_eq!(NodeId(0).to_string(), "N0");
        assert_eq!(CoreId(17).to_string(), "C17");
        assert_eq!(RegionId(42).to_string(), "R42");
    }

    #[test]
    fn round_trip_usize() {
        let s: SocketId = 5usize.into();
        assert_eq!(usize::from(s), 5);
        assert_eq!(s.index(), 5);
        let c = CoreId::from(9usize);
        assert_eq!(c.index(), 9);
    }

    #[test]
    fn socket_node_correspondence() {
        assert_eq!(SocketId(4).node(), NodeId(4));
        assert_eq!(NodeId(7).socket(), SocketId(7));
    }

    #[test]
    fn ordering_and_default() {
        assert!(SocketId(1) < SocketId(2));
        assert_eq!(RegionId::default(), RegionId(0));
    }
}
