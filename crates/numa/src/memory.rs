//! Page-granular placement of data regions onto NUMA nodes.
//!
//! Tasks in the modelled runtime operate on *regions*: contiguous blocks of
//! bytes such as one tile of a blocked matrix. The operating system places
//! memory at page granularity, and the placement is decided by whichever
//! core *first touches* each page. The paper's *deferred allocation* policy
//! postpones that first touch for a task's output regions until the task has
//! been assigned to a socket, so the runtime controls where the data ends up.
//!
//! [`MemoryMap`] tracks, for every region, whether it has been placed and on
//! which node(s). It supports whole-region placement (the common case for
//! task outputs), interleaved placement (the default OS policy for large
//! shared arrays when no NUMA policy is applied), and explicit per-page
//! placement for finer modelling.

use std::collections::HashMap;

use crate::ids::{NodeId, RegionId};

/// Default page size used when converting region sizes to page counts (4 KiB).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Where the bytes of a region currently live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// The region has been registered but no page has been touched yet —
    /// the state deferred allocation keeps output regions in until the
    /// producing task is scheduled.
    Unallocated,
    /// All pages of the region live on a single node (the result of a first
    /// touch by one socket, or of an explicit placement).
    Node(NodeId),
    /// Pages are interleaved round-robin across the given nodes (the OS
    /// `MPOL_INTERLEAVE` policy); the vector lists the nodes in interleave
    /// order and is never empty.
    Interleaved(Vec<NodeId>),
    /// Explicit per-page placement (one entry per page of the region).
    Pages(Vec<NodeId>),
}

impl Placement {
    /// True if at least one page of the region has a home node.
    pub fn is_allocated(&self) -> bool {
        !matches!(self, Placement::Unallocated)
    }

    /// If the whole region lives on one node, that node.
    pub fn single_node(&self) -> Option<NodeId> {
        match self {
            Placement::Node(n) => Some(*n),
            Placement::Pages(pages) => {
                let first = *pages.first()?;
                pages.iter().all(|&p| p == first).then_some(first)
            }
            Placement::Interleaved(nodes) => {
                let first = *nodes.first()?;
                nodes.iter().all(|&n| n == first).then_some(first)
            }
            Placement::Unallocated => None,
        }
    }
}

/// Static description of a region: its size and an optional debug label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionInfo {
    /// Size of the region in bytes.
    pub size_bytes: u64,
    /// Optional human readable label (e.g. `"A[2][3]"`).
    pub label: Option<String>,
}

/// Per-region byte distribution over nodes, produced by
/// [`MemoryMap::bytes_per_node`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeBytes {
    /// `(node, bytes)` pairs for every node that holds at least one byte of
    /// the region, sorted by node id.
    pub per_node: Vec<(NodeId, u64)>,
    /// Bytes of the region that are not yet allocated anywhere.
    pub unallocated: u64,
}

impl NodeBytes {
    /// Total allocated bytes.
    pub fn allocated(&self) -> u64 {
        self.per_node.iter().map(|(_, b)| *b).sum()
    }
}

/// The NUMA memory state of the machine: which node holds each region.
///
/// The map is a pure bookkeeping structure — it never allocates real memory.
/// Both the discrete-event simulator and the threaded executor use it as the
/// single source of truth for data location, which is exactly the
/// information the paper's scheduling policies consume.
#[derive(Clone, Debug, Default)]
pub struct MemoryMap {
    regions: Vec<RegionInfo>,
    placements: Vec<Placement>,
    page_size: usize,
    /// Bytes currently resident on each node (kept incrementally).
    node_resident: HashMap<usize, u64>,
}

impl MemoryMap {
    /// Creates an empty memory map with the default 4 KiB page size.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Creates an empty memory map with a custom page size (must be > 0).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        MemoryMap {
            regions: Vec::new(),
            placements: Vec::new(),
            page_size,
            node_resident: HashMap::new(),
        }
    }

    /// Page size used to convert region sizes into page counts.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of registered regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// True if no region has been registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Registers a new region of `size_bytes` bytes and returns its id.
    /// The region starts unallocated (deferred).
    pub fn register(&mut self, size_bytes: u64) -> RegionId {
        self.register_labelled(size_bytes, None::<String>)
    }

    /// Registers a new region with a debug label.
    pub fn register_labelled(
        &mut self,
        size_bytes: u64,
        label: Option<impl Into<String>>,
    ) -> RegionId {
        let id = RegionId(self.regions.len());
        self.regions.push(RegionInfo {
            size_bytes,
            label: label.map(Into::into),
        });
        self.placements.push(Placement::Unallocated);
        id
    }

    /// Static information about a region.
    ///
    /// # Panics
    /// Panics if the region id was not produced by this map.
    pub fn info(&self, region: RegionId) -> &RegionInfo {
        &self.regions[region.index()]
    }

    /// Size of a region in bytes.
    pub fn size_of(&self, region: RegionId) -> u64 {
        self.regions[region.index()].size_bytes
    }

    /// Number of pages a region spans (at least 1 for non-empty regions).
    pub fn pages_of(&self, region: RegionId) -> usize {
        let size = self.size_of(region) as usize;
        size.div_ceil(self.page_size).max(usize::from(size > 0))
    }

    /// Current placement of a region.
    pub fn placement(&self, region: RegionId) -> &Placement {
        &self.placements[region.index()]
    }

    /// True if any page of the region has been placed.
    pub fn is_allocated(&self, region: RegionId) -> bool {
        self.placements[region.index()].is_allocated()
    }

    /// Places the whole region on `node`, as the paper's deferred allocation
    /// does when the producing task is finally scheduled. Overwrites any
    /// previous placement (modelling a migration).
    pub fn place(&mut self, region: RegionId, node: NodeId) {
        self.remove_resident(region);
        self.placements[region.index()] = Placement::Node(node);
        *self.node_resident.entry(node.index()).or_default() += self.size_of(region);
    }

    /// Performs a *first touch*: places the region on `node` only if it is
    /// still unallocated. Returns `true` if this call performed the
    /// placement.
    pub fn first_touch(&mut self, region: RegionId, node: NodeId) -> bool {
        if self.is_allocated(region) {
            false
        } else {
            self.place(region, node);
            true
        }
    }

    /// Interleaves the region round-robin across `nodes` (the behaviour of a
    /// NUMA-oblivious initialisation of a large shared array).
    ///
    /// # Panics
    /// Panics if `nodes` is empty.
    pub fn place_interleaved(&mut self, region: RegionId, nodes: &[NodeId]) {
        assert!(!nodes.is_empty(), "interleave set cannot be empty");
        self.remove_resident(region);
        self.placements[region.index()] = Placement::Interleaved(nodes.to_vec());
        for (node, bytes) in self.interleave_bytes(region, nodes) {
            *self.node_resident.entry(node.index()).or_default() += bytes;
        }
    }

    /// Places each page of the region explicitly.
    ///
    /// # Panics
    /// Panics if `pages.len()` does not match the page count of the region.
    pub fn place_pages(&mut self, region: RegionId, pages: Vec<NodeId>) {
        assert_eq!(
            pages.len(),
            self.pages_of(region),
            "one node per page required"
        );
        self.remove_resident(region);
        for (node, bytes) in Self::page_bytes(self.size_of(region), self.page_size, &pages) {
            *self.node_resident.entry(node.index()).or_default() += bytes;
        }
        self.placements[region.index()] = Placement::Pages(pages);
    }

    /// Resets a region to the unallocated state (used by tests and by the
    /// deferred-allocation bookkeeping when data is freed between windows).
    pub fn deallocate(&mut self, region: RegionId) {
        self.remove_resident(region);
        self.placements[region.index()] = Placement::Unallocated;
    }

    /// How many bytes of `region` live on each node.
    pub fn bytes_per_node(&self, region: RegionId) -> NodeBytes {
        let mut out = NodeBytes::default();
        self.bytes_per_node_into(region, &mut out);
        out
    }

    /// [`MemoryMap::bytes_per_node`] into a caller-owned buffer. The common
    /// placements (`Unallocated`, whole-region `Node`) fill the buffer
    /// without allocating, which matters on the executor hot path that asks
    /// once per task access.
    pub fn bytes_per_node_into(&self, region: RegionId, out: &mut NodeBytes) {
        out.per_node.clear();
        out.unallocated = 0;
        let size = self.size_of(region);
        match &self.placements[region.index()] {
            Placement::Unallocated => out.unallocated = size,
            Placement::Node(n) => out.per_node.push((*n, size)),
            Placement::Interleaved(nodes) => {
                out.per_node.extend(self.interleave_bytes(region, nodes));
                out.per_node.sort_by_key(|(n, _)| n.index());
            }
            Placement::Pages(pages) => {
                out.per_node
                    .extend(Self::page_bytes(size, self.page_size, pages));
                out.per_node.sort_by_key(|(n, _)| n.index());
            }
        }
    }

    /// Total bytes resident on `node` across all regions.
    pub fn resident_on(&self, node: NodeId) -> u64 {
        self.node_resident.get(&node.index()).copied().unwrap_or(0)
    }

    /// Total bytes registered (allocated or not).
    pub fn total_registered_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size_bytes).sum()
    }

    /// Total bytes currently allocated on some node.
    pub fn total_resident_bytes(&self) -> u64 {
        self.node_resident.values().sum()
    }

    /// Iterates over all region ids.
    pub fn regions(&self) -> impl Iterator<Item = RegionId> {
        (0..self.regions.len()).map(RegionId)
    }

    fn remove_resident(&mut self, region: RegionId) {
        let nb = self.bytes_per_node(region);
        for (node, bytes) in nb.per_node {
            if let Some(entry) = self.node_resident.get_mut(&node.index()) {
                *entry = entry.saturating_sub(bytes);
            }
        }
    }

    fn interleave_bytes(&self, region: RegionId, nodes: &[NodeId]) -> Vec<(NodeId, u64)> {
        let size = self.size_of(region);
        let pages = self.pages_of(region);
        let mut per: HashMap<usize, u64> = HashMap::new();
        for p in 0..pages {
            let node = nodes[p % nodes.len()];
            let bytes = Self::bytes_in_page(size, self.page_size, p, pages);
            *per.entry(node.index()).or_default() += bytes;
        }
        per.into_iter().map(|(n, b)| (NodeId(n), b)).collect()
    }

    fn page_bytes(size: u64, page_size: usize, pages: &[NodeId]) -> Vec<(NodeId, u64)> {
        let mut per: HashMap<usize, u64> = HashMap::new();
        let n = pages.len();
        for (p, node) in pages.iter().enumerate() {
            *per.entry(node.index()).or_default() += Self::bytes_in_page(size, page_size, p, n);
        }
        per.into_iter().map(|(n, b)| (NodeId(n), b)).collect()
    }

    fn bytes_in_page(size: u64, page_size: usize, page: usize, total_pages: usize) -> u64 {
        if total_pages == 0 {
            return 0;
        }
        if page + 1 < total_pages {
            page_size as u64
        } else {
            // Last page holds the remainder.
            size - (page_size as u64) * (total_pages as u64 - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_starts_unallocated() {
        let mut m = MemoryMap::new();
        let r = m.register(1 << 20);
        assert_eq!(m.num_regions(), 1);
        assert!(!m.is_allocated(r));
        assert_eq!(*m.placement(r), Placement::Unallocated);
        assert_eq!(m.size_of(r), 1 << 20);
        assert_eq!(m.bytes_per_node(r).unallocated, 1 << 20);
    }

    #[test]
    fn place_whole_region() {
        let mut m = MemoryMap::new();
        let r = m.register(8192);
        m.place(r, NodeId(3));
        assert!(m.is_allocated(r));
        assert_eq!(m.placement(r).single_node(), Some(NodeId(3)));
        assert_eq!(m.resident_on(NodeId(3)), 8192);
        assert_eq!(m.resident_on(NodeId(0)), 0);
        let nb = m.bytes_per_node(r);
        assert_eq!(nb.per_node, vec![(NodeId(3), 8192)]);
        assert_eq!(nb.unallocated, 0);
    }

    #[test]
    fn first_touch_only_once() {
        let mut m = MemoryMap::new();
        let r = m.register(4096);
        assert!(m.first_touch(r, NodeId(1)));
        assert!(!m.first_touch(r, NodeId(2)));
        assert_eq!(m.placement(r).single_node(), Some(NodeId(1)));
    }

    #[test]
    fn migration_updates_residency() {
        let mut m = MemoryMap::new();
        let r = m.register(10_000);
        m.place(r, NodeId(0));
        m.place(r, NodeId(5));
        assert_eq!(m.resident_on(NodeId(0)), 0);
        assert_eq!(m.resident_on(NodeId(5)), 10_000);
        assert_eq!(m.total_resident_bytes(), 10_000);
    }

    #[test]
    fn interleaved_distributes_pages() {
        let mut m = MemoryMap::with_page_size(1000);
        let r = m.register(4000); // 4 pages
        m.place_interleaved(r, &[NodeId(0), NodeId(1)]);
        let nb = m.bytes_per_node(r);
        assert_eq!(nb.per_node, vec![(NodeId(0), 2000), (NodeId(1), 2000)]);
        assert_eq!(m.resident_on(NodeId(0)), 2000);
        assert_eq!(m.resident_on(NodeId(1)), 2000);
        // 2 equal nodes is not a single-node placement unless all the same.
        assert_eq!(m.placement(r).single_node(), None);
    }

    #[test]
    fn interleaved_last_page_remainder() {
        let mut m = MemoryMap::with_page_size(1000);
        let r = m.register(2500); // 3 pages: 1000, 1000, 500
        m.place_interleaved(r, &[NodeId(0), NodeId(1)]);
        let nb = m.bytes_per_node(r);
        // pages 0 and 2 on node 0 (1000 + 500), page 1 on node 1.
        assert_eq!(nb.per_node, vec![(NodeId(0), 1500), (NodeId(1), 1000)]);
        assert_eq!(nb.allocated(), 2500);
    }

    #[test]
    fn explicit_pages() {
        let mut m = MemoryMap::with_page_size(100);
        let r = m.register(250); // 3 pages: 100, 100, 50
        m.place_pages(r, vec![NodeId(2), NodeId(2), NodeId(4)]);
        let nb = m.bytes_per_node(r);
        assert_eq!(nb.per_node, vec![(NodeId(2), 200), (NodeId(4), 50)]);
        assert_eq!(m.pages_of(r), 3);
    }

    #[test]
    #[should_panic(expected = "one node per page")]
    fn wrong_page_count_rejected() {
        let mut m = MemoryMap::with_page_size(100);
        let r = m.register(250);
        m.place_pages(r, vec![NodeId(0)]);
    }

    #[test]
    fn deallocate_returns_to_unallocated() {
        let mut m = MemoryMap::new();
        let r = m.register(5000);
        m.place(r, NodeId(2));
        m.deallocate(r);
        assert!(!m.is_allocated(r));
        assert_eq!(m.total_resident_bytes(), 0);
    }

    #[test]
    fn pages_of_rounds_up() {
        let mut m = MemoryMap::with_page_size(4096);
        let a = m.register(1);
        let b = m.register(4096);
        let c = m.register(4097);
        let z = m.register(0);
        assert_eq!(m.pages_of(a), 1);
        assert_eq!(m.pages_of(b), 1);
        assert_eq!(m.pages_of(c), 2);
        assert_eq!(m.pages_of(z), 0);
    }

    #[test]
    fn totals_track_all_regions() {
        let mut m = MemoryMap::new();
        let a = m.register(100);
        let b = m.register(200);
        let _c = m.register(300);
        m.place(a, NodeId(0));
        m.place(b, NodeId(1));
        assert_eq!(m.total_registered_bytes(), 600);
        assert_eq!(m.total_resident_bytes(), 300);
        assert_eq!(m.regions().count(), 3);
    }

    #[test]
    fn labels_are_kept() {
        let mut m = MemoryMap::new();
        let r = m.register_labelled(64, Some("A[0][1]"));
        assert_eq!(m.info(r).label.as_deref(), Some("A[0][1]"));
    }

    #[test]
    fn single_node_detects_uniform_pages() {
        let mut m = MemoryMap::with_page_size(10);
        let r = m.register(30);
        m.place_pages(r, vec![NodeId(1), NodeId(1), NodeId(1)]);
        assert_eq!(m.placement(r).single_node(), Some(NodeId(1)));
    }
}
