//! Incremental dependence derivation with OpenMP/OmpSs `depend` semantics.
//!
//! Tasks are registered in program order. For every region the tracker keeps
//! the last writer and the set of readers since that write, and emits:
//!
//! * **RAW** (read after write): reader depends on the last writer.
//! * **WAW** (write after write): new writer depends on the last writer.
//! * **WAR** (write after read): new writer depends on every reader since the
//!   last write.
//!
//! Each emitted dependence carries the number of bytes of the access that
//! induced it; duplicate edges between the same pair of tasks are merged by
//! the graph with their byte counts added, matching how the paper weighs TDG
//! edges "depending on the amount of bytes they represent".

use std::collections::HashMap;

use numadag_numa::RegionId;

use crate::task::{DataAccess, TaskId};

/// A single derived dependence: `predecessor` must finish before `successor`
/// starts, because of `bytes` bytes of shared data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dependence {
    /// The earlier task.
    pub predecessor: TaskId,
    /// The later task.
    pub successor: TaskId,
    /// Bytes of the region that induced the ordering.
    pub bytes: u64,
}

#[derive(Clone, Debug, Default)]
struct RegionState {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// Incremental dependence tracker.
#[derive(Clone, Debug, Default)]
pub struct DependencyTracker {
    regions: HashMap<RegionId, RegionState>,
}

impl DependencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the accesses of `task` (which must be submitted in program
    /// order, i.e. with increasing ids) and returns the dependences it incurs.
    pub fn register(&mut self, task: TaskId, accesses: &[DataAccess]) -> Vec<Dependence> {
        let mut deps = Vec::new();
        for access in accesses {
            let state = self.regions.entry(access.region).or_default();
            if access.mode.reads() {
                if let Some(writer) = state.last_writer {
                    if writer != task {
                        deps.push(Dependence {
                            predecessor: writer,
                            successor: task,
                            bytes: access.bytes,
                        });
                    }
                }
            }
            if access.mode.writes() {
                // WAR against every reader since the last write.
                for &reader in &state.readers_since_write {
                    if reader != task {
                        deps.push(Dependence {
                            predecessor: reader,
                            successor: task,
                            bytes: access.bytes,
                        });
                    }
                }
                // WAW against the last writer — but only when there are no
                // intervening readers (they already order this task after the
                // old writer transitively) and when the access did not read
                // (a RAW edge to the same writer was emitted above).
                if state.readers_since_write.is_empty() && !access.mode.reads() {
                    if let Some(writer) = state.last_writer {
                        if writer != task {
                            deps.push(Dependence {
                                predecessor: writer,
                                successor: task,
                                bytes: access.bytes,
                            });
                        }
                    }
                }
            }
        }
        // Second pass: update region states (done separately so a task with
        // an `inout` access does not see itself as a previous reader/writer).
        for access in accesses {
            let state = self.regions.entry(access.region).or_default();
            if access.mode.writes() {
                state.last_writer = Some(task);
                state.readers_since_write.clear();
            }
            if access.mode.reads() && !access.mode.writes() {
                state.readers_since_write.push(task);
            }
        }
        deps
    }

    /// The task that last wrote `region`, if any.
    pub fn last_writer(&self, region: RegionId) -> Option<TaskId> {
        self.regions.get(&region).and_then(|s| s.last_writer)
    }

    /// Number of regions the tracker has seen.
    pub fn num_regions_seen(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::DataAccess;

    fn r(i: usize) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn raw_dependence() {
        let mut t = DependencyTracker::new();
        assert!(t
            .register(TaskId(0), &[DataAccess::write(r(0), 100)])
            .is_empty());
        let deps = t.register(TaskId(1), &[DataAccess::read(r(0), 100)]);
        assert_eq!(
            deps,
            vec![Dependence {
                predecessor: TaskId(0),
                successor: TaskId(1),
                bytes: 100
            }]
        );
    }

    #[test]
    fn waw_dependence() {
        let mut t = DependencyTracker::new();
        t.register(TaskId(0), &[DataAccess::write(r(0), 50)]);
        let deps = t.register(TaskId(1), &[DataAccess::write(r(0), 50)]);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].predecessor, TaskId(0));
        assert_eq!(t.last_writer(r(0)), Some(TaskId(1)));
    }

    #[test]
    fn war_dependence_covers_all_readers() {
        let mut t = DependencyTracker::new();
        t.register(TaskId(0), &[DataAccess::write(r(0), 10)]);
        t.register(TaskId(1), &[DataAccess::read(r(0), 10)]);
        t.register(TaskId(2), &[DataAccess::read(r(0), 10)]);
        let deps = t.register(TaskId(3), &[DataAccess::write(r(0), 10)]);
        let preds: Vec<TaskId> = deps.iter().map(|d| d.predecessor).collect();
        assert!(preds.contains(&TaskId(1)));
        assert!(preds.contains(&TaskId(2)));
        // No WAW against task 0: the readers already order task 3 after it
        // transitively, and OmpSs emits WAR edges in this situation.
        assert_eq!(deps.len(), 2);
    }

    #[test]
    fn inout_chains_serialise() {
        let mut t = DependencyTracker::new();
        t.register(TaskId(0), &[DataAccess::read_write(r(0), 64)]);
        let d1 = t.register(TaskId(1), &[DataAccess::read_write(r(0), 64)]);
        let d2 = t.register(TaskId(2), &[DataAccess::read_write(r(0), 64)]);
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].predecessor, TaskId(0));
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].predecessor, TaskId(1));
    }

    #[test]
    fn independent_regions_have_no_deps() {
        let mut t = DependencyTracker::new();
        t.register(TaskId(0), &[DataAccess::write(r(0), 8)]);
        let deps = t.register(TaskId(1), &[DataAccess::write(r(1), 8)]);
        assert!(deps.is_empty());
        assert_eq!(t.num_regions_seen(), 2);
    }

    #[test]
    fn readers_reset_after_write() {
        let mut t = DependencyTracker::new();
        t.register(TaskId(0), &[DataAccess::write(r(0), 8)]);
        t.register(TaskId(1), &[DataAccess::read(r(0), 8)]);
        t.register(TaskId(2), &[DataAccess::write(r(0), 8)]);
        // A new reader depends only on the latest writer, not on task 1.
        let deps = t.register(TaskId(3), &[DataAccess::read(r(0), 8)]);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].predecessor, TaskId(2));
    }

    #[test]
    fn multi_access_task_emits_all_deps() {
        let mut t = DependencyTracker::new();
        t.register(TaskId(0), &[DataAccess::write(r(0), 100)]);
        t.register(TaskId(1), &[DataAccess::write(r(1), 200)]);
        let deps = t.register(
            TaskId(2),
            &[
                DataAccess::read(r(0), 100),
                DataAccess::read(r(1), 200),
                DataAccess::write(r(2), 300),
            ],
        );
        assert_eq!(deps.len(), 2);
        let total: u64 = deps.iter().map(|d| d.bytes).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn concurrent_readers_do_not_depend_on_each_other() {
        let mut t = DependencyTracker::new();
        t.register(TaskId(0), &[DataAccess::write(r(0), 8)]);
        let d1 = t.register(TaskId(1), &[DataAccess::read(r(0), 8)]);
        let d2 = t.register(TaskId(2), &[DataAccess::read(r(0), 8)]);
        assert_eq!(d1[0].predecessor, TaskId(0));
        assert_eq!(d2[0].predecessor, TaskId(0));
        assert_eq!(d2.len(), 1);
    }
}
