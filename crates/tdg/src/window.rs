//! Task windows.
//!
//! The paper partitions the TDG "once the execution goes through a barrier
//! point or a limit in terms of the total number of tasks contained in the
//! graph — the *window size limit* — is reached". A window is therefore a
//! contiguous prefix (or slice) of the submission order.

use crate::graph::TaskGraph;
use crate::task::TaskId;

/// Window configuration used by runtime graph partitioning (RGP).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowConfig {
    /// Maximum number of tasks accumulated before the window is closed and
    /// partitioned.
    pub window_size: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        // The default window used throughout the reproduction: large enough
        // to capture the structure of the first iteration of the kernels,
        // small enough that partitioning stays cheap.
        WindowConfig { window_size: 1024 }
    }
}

impl WindowConfig {
    /// A window of the given size (must be at least 1).
    pub fn new(window_size: usize) -> Self {
        assert!(window_size >= 1, "window size must be at least 1");
        WindowConfig { window_size }
    }
}

/// A contiguous slice of the submission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskWindow {
    /// First task id in the window (inclusive).
    pub start: TaskId,
    /// One past the last task id in the window.
    pub end: TaskId,
}

impl TaskWindow {
    /// The window covering tasks `[start, end)`.
    pub fn new(start: TaskId, end: TaskId) -> Self {
        assert!(start.index() <= end.index(), "window must not be inverted");
        TaskWindow { start, end }
    }

    /// The first window (prefix) of `graph` under `config`: the first
    /// `window_size` tasks, or all of them if there are fewer.
    pub fn initial(graph: &TaskGraph, config: WindowConfig) -> Self {
        let end = graph.num_tasks().min(config.window_size);
        TaskWindow::new(TaskId(0), TaskId(end))
    }

    /// Splits the whole graph into consecutive windows of `config.window_size`.
    pub fn split_all(graph: &TaskGraph, config: WindowConfig) -> Vec<TaskWindow> {
        let n = graph.num_tasks();
        let mut windows = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + config.window_size).min(n);
            windows.push(TaskWindow::new(TaskId(start), TaskId(end)));
            start = end;
        }
        windows
    }

    /// Number of tasks in the window.
    pub fn len(&self) -> usize {
        self.end.index() - self.start.index()
    }

    /// True if the window contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the window contains `task`.
    pub fn contains(&self, task: TaskId) -> bool {
        task.index() >= self.start.index() && task.index() < self.end.index()
    }

    /// The task ids in the window.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (self.start.index()..self.end.index()).map(TaskId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TdgBuilder;
    use crate::task::TaskSpec;

    fn chain(n: usize) -> TaskGraph {
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        for _ in 0..n {
            b.submit(TaskSpec::new("step").work(1.0).reads_writes(r, 64));
        }
        b.finish().0
    }

    #[test]
    fn initial_window_is_a_prefix() {
        let g = chain(100);
        let w = TaskWindow::initial(&g, WindowConfig::new(32));
        assert_eq!(w.len(), 32);
        assert!(w.contains(TaskId(0)));
        assert!(w.contains(TaskId(31)));
        assert!(!w.contains(TaskId(32)));
        assert_eq!(w.task_ids().count(), 32);
    }

    #[test]
    fn initial_window_clamps_to_graph_size() {
        let g = chain(10);
        let w = TaskWindow::initial(&g, WindowConfig::new(1000));
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn split_all_covers_every_task_once() {
        let g = chain(103);
        let windows = TaskWindow::split_all(&g, WindowConfig::new(25));
        assert_eq!(windows.len(), 5);
        let total: usize = windows.iter().map(|w| w.len()).sum();
        assert_eq!(total, 103);
        assert_eq!(windows.last().unwrap().len(), 3);
        // Windows are contiguous and non-overlapping.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn empty_graph_has_no_windows() {
        let g = TaskGraph::new();
        assert!(TaskWindow::split_all(&g, WindowConfig::default()).is_empty());
        let w = TaskWindow::initial(&g, WindowConfig::default());
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_rejected() {
        WindowConfig::new(0);
    }

    #[test]
    fn default_window_size() {
        assert_eq!(WindowConfig::default().window_size, 1024);
    }
}
