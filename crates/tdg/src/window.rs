//! Task windows.
//!
//! The paper partitions the TDG "once the execution goes through a barrier
//! point or a limit in terms of the total number of tasks contained in the
//! graph — the *window size limit* — is reached". A window is therefore a
//! contiguous prefix (or slice) of the submission order.

use crate::graph::TaskGraph;
use crate::task::TaskId;

/// Window configuration used by runtime graph partitioning (RGP).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowConfig {
    /// Maximum number of tasks accumulated before the window is closed and
    /// partitioned.
    pub window_size: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        // The default window used throughout the reproduction: large enough
        // to capture the structure of the first iteration of the kernels,
        // small enough that partitioning stays cheap.
        WindowConfig { window_size: 1024 }
    }
}

impl WindowConfig {
    /// A window of the given size (must be at least 1).
    pub fn new(window_size: usize) -> Self {
        assert!(window_size >= 1, "window size must be at least 1");
        WindowConfig { window_size }
    }
}

/// A contiguous slice of the submission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskWindow {
    /// First task id in the window (inclusive).
    pub start: TaskId,
    /// One past the last task id in the window.
    pub end: TaskId,
}

impl TaskWindow {
    /// The window covering tasks `[start, end)`.
    pub fn new(start: TaskId, end: TaskId) -> Self {
        assert!(start.index() <= end.index(), "window must not be inverted");
        TaskWindow { start, end }
    }

    /// The first window (prefix) of `graph` under `config`: the first
    /// `window_size` tasks, or all of them if there are fewer.
    pub fn initial(graph: &TaskGraph, config: WindowConfig) -> Self {
        let end = graph.num_tasks().min(config.window_size);
        TaskWindow::new(TaskId(0), TaskId(end))
    }

    /// Splits the whole graph into consecutive windows of `config.window_size`.
    ///
    /// Materialises every window up front; [`WindowCursor`] is the streaming
    /// equivalent for policies that advance window by window.
    pub fn split_all(graph: &TaskGraph, config: WindowConfig) -> Vec<TaskWindow> {
        WindowCursor::new(graph, config).collect()
    }

    /// Number of tasks in the window.
    pub fn len(&self) -> usize {
        self.end.index() - self.start.index()
    }

    /// True if the window contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the window contains `task`.
    pub fn contains(&self, task: TaskId) -> bool {
        task.index() >= self.start.index() && task.index() < self.end.index()
    }

    /// The task ids in the window.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (self.start.index()..self.end.index()).map(TaskId)
    }
}

/// A streaming walk over the consecutive windows of a graph's submission
/// order.
///
/// Where [`TaskWindow::split_all`] materialises every window up front, the
/// cursor yields them one at a time, so a propagating policy can close and
/// partition a window exactly when execution first crosses its boundary.
/// The sequence of emitted windows is identical to `split_all`'s.
#[derive(Clone, Debug)]
pub struct WindowCursor {
    window_size: usize,
    num_tasks: usize,
    next_start: usize,
    windows_emitted: usize,
}

impl WindowCursor {
    /// A cursor over `graph` under `config`, positioned before the first
    /// window.
    pub fn new(graph: &TaskGraph, config: WindowConfig) -> Self {
        WindowCursor::over(graph.num_tasks(), config)
    }

    /// A cursor over `num_tasks` submission slots (no graph required).
    pub fn over(num_tasks: usize, config: WindowConfig) -> Self {
        WindowCursor {
            window_size: config.window_size,
            num_tasks,
            next_start: 0,
            windows_emitted: 0,
        }
    }

    /// The first task id not yet covered by an emitted window.
    pub fn frontier(&self) -> TaskId {
        TaskId(self.next_start)
    }

    /// True if `task` lies inside a window that has already been emitted.
    pub fn covers(&self, task: TaskId) -> bool {
        task.index() < self.next_start
    }

    /// True once every task has been covered by an emitted window.
    pub fn is_exhausted(&self) -> bool {
        self.next_start >= self.num_tasks
    }

    /// Number of windows emitted so far.
    pub fn windows_emitted(&self) -> usize {
        self.windows_emitted
    }

    /// Emits the next window, or `None` once the graph is exhausted.
    pub fn advance(&mut self) -> Option<TaskWindow> {
        if self.is_exhausted() {
            return None;
        }
        let end = (self.next_start + self.window_size).min(self.num_tasks);
        let window = TaskWindow::new(TaskId(self.next_start), TaskId(end));
        self.next_start = end;
        self.windows_emitted += 1;
        Some(window)
    }
}

impl Iterator for WindowCursor {
    type Item = TaskWindow;

    fn next(&mut self) -> Option<TaskWindow> {
        self.advance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TdgBuilder;
    use crate::task::TaskSpec;

    fn chain(n: usize) -> TaskGraph {
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        for _ in 0..n {
            b.submit(TaskSpec::new("step").work(1.0).reads_writes(r, 64));
        }
        b.finish().0
    }

    #[test]
    fn initial_window_is_a_prefix() {
        let g = chain(100);
        let w = TaskWindow::initial(&g, WindowConfig::new(32));
        assert_eq!(w.len(), 32);
        assert!(w.contains(TaskId(0)));
        assert!(w.contains(TaskId(31)));
        assert!(!w.contains(TaskId(32)));
        assert_eq!(w.task_ids().count(), 32);
    }

    #[test]
    fn initial_window_clamps_to_graph_size() {
        let g = chain(10);
        let w = TaskWindow::initial(&g, WindowConfig::new(1000));
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn split_all_covers_every_task_once() {
        let g = chain(103);
        let windows = TaskWindow::split_all(&g, WindowConfig::new(25));
        assert_eq!(windows.len(), 5);
        let total: usize = windows.iter().map(|w| w.len()).sum();
        assert_eq!(total, 103);
        assert_eq!(windows.last().unwrap().len(), 3);
        // Windows are contiguous and non-overlapping.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn empty_graph_has_no_windows() {
        let g = TaskGraph::new();
        assert!(TaskWindow::split_all(&g, WindowConfig::default()).is_empty());
        let w = TaskWindow::initial(&g, WindowConfig::default());
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_rejected() {
        WindowConfig::new(0);
    }

    #[test]
    fn default_window_size() {
        assert_eq!(WindowConfig::default().window_size, 1024);
    }

    #[test]
    fn cursor_matches_split_all() {
        let g = chain(103);
        let cfg = WindowConfig::new(25);
        let streamed: Vec<TaskWindow> = WindowCursor::new(&g, cfg).collect();
        assert_eq!(streamed, TaskWindow::split_all(&g, cfg));
    }

    #[test]
    fn cursor_on_empty_graph_is_exhausted_immediately() {
        let g = TaskGraph::new();
        let mut c = WindowCursor::new(&g, WindowConfig::default());
        assert!(c.is_exhausted());
        assert_eq!(c.advance(), None);
        assert_eq!(c.windows_emitted(), 0);
        assert_eq!(c.frontier(), TaskId(0));
    }

    #[test]
    fn cursor_window_larger_than_graph_emits_one_clamped_window() {
        let g = chain(10);
        let mut c = WindowCursor::new(&g, WindowConfig::new(1000));
        let w = c.advance().unwrap();
        assert_eq!(w, TaskWindow::new(TaskId(0), TaskId(10)));
        assert!(c.is_exhausted());
        assert_eq!(c.advance(), None);
        assert_eq!(c.windows_emitted(), 1);
        // split_all agrees.
        assert_eq!(
            TaskWindow::split_all(&g, WindowConfig::new(1000)),
            vec![TaskWindow::new(TaskId(0), TaskId(10))]
        );
    }

    #[test]
    fn cursor_window_size_one_emits_singleton_windows() {
        let g = chain(4);
        let cfg = WindowConfig::new(1);
        let windows: Vec<TaskWindow> = WindowCursor::new(&g, cfg).collect();
        assert_eq!(windows.len(), 4);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.len(), 1);
            assert!(w.contains(TaskId(i)));
        }
        assert_eq!(TaskWindow::split_all(&g, cfg), windows);
    }

    #[test]
    fn cursor_exact_multiple_boundary_has_no_trailing_window() {
        let g = chain(100);
        let cfg = WindowConfig::new(25);
        let mut c = WindowCursor::new(&g, cfg);
        let windows: Vec<TaskWindow> = c.by_ref().collect();
        assert_eq!(windows.len(), 4);
        assert!(windows.iter().all(|w| w.len() == 25));
        assert_eq!(c.windows_emitted(), 4);
        assert_eq!(c.advance(), None);
        assert_eq!(c.windows_emitted(), 4, "exhausted advance must not count");
    }

    #[test]
    fn cursor_covers_tracks_the_frontier() {
        let g = chain(10);
        let mut c = WindowCursor::new(&g, WindowConfig::new(4));
        assert!(!c.covers(TaskId(0)));
        c.advance();
        assert!(c.covers(TaskId(3)));
        assert!(!c.covers(TaskId(4)));
        assert_eq!(c.frontier(), TaskId(4));
        c.advance();
        assert!(c.covers(TaskId(7)));
        assert_eq!(c.frontier(), TaskId(8));
        c.advance();
        assert!(c.covers(TaskId(9)));
        assert!(c.is_exhausted());
    }
}
