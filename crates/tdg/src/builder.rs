//! The TDG builder: the front door applications (and the kernels crate) use
//! to express their computation as tasks.
//!
//! [`TdgBuilder`] mirrors the role of the task-creation path of Nanos++: it
//! hands out region ids, accepts task submissions in program order, runs the
//! dependence analysis and accumulates the [`TaskGraph`].

use numadag_numa::RegionId;

use crate::deps::DependencyTracker;
use crate::graph::TaskGraph;
use crate::task::{TaskDescriptor, TaskId, TaskSpec};

/// Incrementally builds a [`TaskGraph`] (and the associated region table)
/// from task submissions.
#[derive(Clone, Debug, Default)]
pub struct TdgBuilder {
    graph: TaskGraph,
    tracker: DependencyTracker,
    region_sizes: Vec<u64>,
    region_labels: Vec<Option<String>>,
}

impl TdgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a data region of `size_bytes` bytes and returns its id.
    pub fn region(&mut self, size_bytes: u64) -> RegionId {
        let id = RegionId(self.region_sizes.len());
        self.region_sizes.push(size_bytes);
        self.region_labels.push(None);
        id
    }

    /// Registers a labelled data region (labels show up in traces).
    pub fn labelled_region(&mut self, size_bytes: u64, label: impl Into<String>) -> RegionId {
        let id = self.region(size_bytes);
        self.region_labels[id.index()] = Some(label.into());
        id
    }

    /// Number of regions registered so far.
    pub fn num_regions(&self) -> usize {
        self.region_sizes.len()
    }

    /// Size in bytes of a region.
    pub fn region_size(&self, region: RegionId) -> u64 {
        self.region_sizes[region.index()]
    }

    /// All region sizes, indexed by region id.
    pub fn region_sizes(&self) -> &[u64] {
        &self.region_sizes
    }

    /// Submits a task. Dependences on earlier tasks are derived automatically
    /// from the declared accesses. Returns the id of the new task.
    ///
    /// # Panics
    /// Panics if the task accesses a region id that was not created by this
    /// builder.
    pub fn submit(&mut self, spec: TaskSpec) -> TaskId {
        for access in &spec.accesses {
            assert!(
                access.region.index() < self.region_sizes.len(),
                "task accesses unknown region {:?}",
                access.region
            );
        }
        let id = TaskId(self.graph.num_tasks());
        let deps = self.tracker.register(id, &spec.accesses);
        let dep_pairs: Vec<(TaskId, u64)> = deps.iter().map(|d| (d.predecessor, d.bytes)).collect();
        let descriptor = TaskDescriptor {
            id,
            kind: spec.kind,
            work_units: spec.work_units,
            accesses: spec.accesses,
        };
        self.graph.push_task(descriptor, &dep_pairs);
        id
    }

    /// Number of tasks submitted so far.
    pub fn num_tasks(&self) -> usize {
        self.graph.num_tasks()
    }

    /// Read-only view of the graph built so far.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Finishes building and returns the graph together with the region size
    /// table.
    pub fn finish(self) -> (TaskGraph, Vec<u64>) {
        (self.graph, self.region_sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    #[test]
    fn builder_derives_dependences() {
        let mut b = TdgBuilder::new();
        let a = b.region(4096);
        let c = b.region(4096);
        let t0 = b.submit(TaskSpec::new("init_a").work(1.0).writes(a, 4096));
        let t1 = b.submit(TaskSpec::new("init_c").work(1.0).writes(c, 4096));
        let t2 = b.submit(
            TaskSpec::new("add")
                .work(2.0)
                .reads(a, 4096)
                .reads(c, 4096)
                .writes(a, 4096),
        );
        let (g, sizes) = b.finish();
        assert_eq!(g.num_tasks(), 3);
        assert_eq!(sizes, vec![4096, 4096]);
        assert_eq!(g.in_degree(t2), 2);
        // RAW (read of `a`) and WAW (write of `a`) edges from t0 are merged: 4096 + 4096.
        assert_eq!(g.edge_bytes(t0, t2), Some(4096 + 4096));
        assert!(g.edge_bytes(t1, t2).is_some());
        assert_eq!(g.in_degree(t1), 0);
        assert_eq!(g.in_degree(t0), 0);
    }

    #[test]
    fn regions_are_sequential_and_sized() {
        let mut b = TdgBuilder::new();
        let r0 = b.region(100);
        let r1 = b.labelled_region(200, "B[0]");
        assert_eq!(r0.index(), 0);
        assert_eq!(r1.index(), 1);
        assert_eq!(b.num_regions(), 2);
        assert_eq!(b.region_size(r1), 200);
        assert_eq!(b.region_sizes(), &[100, 200]);
    }

    #[test]
    fn independent_tasks_have_no_edges() {
        let mut b = TdgBuilder::new();
        let regions: Vec<_> = (0..10).map(|_| b.region(64)).collect();
        for &r in &regions {
            b.submit(TaskSpec::new("independent").work(1.0).writes(r, 64));
        }
        let (g, _) = b.finish();
        assert_eq!(g.num_tasks(), 10);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.sources().len(), 10);
    }

    #[test]
    fn long_chain_has_linear_critical_path() {
        let mut b = TdgBuilder::new();
        let r = b.region(1024);
        for i in 0..50 {
            b.submit(
                TaskSpec::new(format!("step{i}"))
                    .work(1.0)
                    .reads_writes(r, 1024),
            );
        }
        let (g, _) = b.finish();
        assert_eq!(g.num_edges(), 49);
        assert!((g.critical_path_work() - 50.0).abs() < 1e-9);
        assert!((g.average_parallelism() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn unknown_region_rejected() {
        let mut b = TdgBuilder::new();
        b.submit(TaskSpec::new("bad").writes(RegionId(3), 8));
    }

    #[test]
    fn graph_view_is_incremental() {
        let mut b = TdgBuilder::new();
        let r = b.region(8);
        b.submit(TaskSpec::new("a").writes(r, 8));
        assert_eq!(b.graph().num_tasks(), 1);
        b.submit(TaskSpec::new("b").reads(r, 8));
        assert_eq!(b.graph().num_tasks(), 2);
        assert_eq!(b.num_tasks(), 2);
    }
}
