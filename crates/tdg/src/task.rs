//! Task descriptors and data accesses.

use numadag_numa::RegionId;
use std::fmt;

/// Identifier of a task within one [`crate::graph::TaskGraph`]. Tasks are
/// numbered densely in submission (program) order, which the dependence
/// analysis relies on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TaskId(pub usize);

impl TaskId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for TaskId {
    fn from(v: usize) -> Self {
        TaskId(v)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// How a task accesses a data region — the OpenMP/OmpSs `depend` clause
/// directions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessMode {
    /// The task only reads the region (`in`).
    In,
    /// The task overwrites the region without reading it (`out`).
    Out,
    /// The task reads and writes the region (`inout`).
    InOut,
}

impl AccessMode {
    /// True if the access reads the previous contents of the region.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }

    /// True if the access writes the region.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }
}

/// One data access of a task.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataAccess {
    /// The region being accessed.
    pub region: RegionId,
    /// Direction of the access.
    pub mode: AccessMode,
    /// Number of bytes the access touches (normally the full region size).
    pub bytes: u64,
}

impl DataAccess {
    /// Creates an `in` access.
    pub fn read(region: RegionId, bytes: u64) -> Self {
        DataAccess {
            region,
            mode: AccessMode::In,
            bytes,
        }
    }

    /// Creates an `out` access.
    pub fn write(region: RegionId, bytes: u64) -> Self {
        DataAccess {
            region,
            mode: AccessMode::Out,
            bytes,
        }
    }

    /// Creates an `inout` access.
    pub fn read_write(region: RegionId, bytes: u64) -> Self {
        DataAccess {
            region,
            mode: AccessMode::InOut,
            bytes,
        }
    }
}

/// A task: a fragment of sequential code with a compute cost estimate and a
/// list of data accesses.
#[derive(Clone, PartialEq, Debug)]
pub struct TaskDescriptor {
    /// Dense id of the task within its graph.
    pub id: TaskId,
    /// Human-readable kind (e.g. `"potrf"`, `"jacobi_sweep"`). Used by
    /// traces, the expert-programmer policy and the benchmark reports.
    pub kind: String,
    /// Compute cost estimate in abstract work units (translated to time by
    /// the cost model). Must be non-negative.
    pub work_units: f64,
    /// Data accesses of the task.
    pub accesses: Vec<DataAccess>,
}

impl TaskDescriptor {
    /// Total bytes the task reads (modes `in` and `inout`).
    pub fn bytes_read(&self) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.mode.reads())
            .map(|a| a.bytes)
            .sum()
    }

    /// Total bytes the task writes (modes `out` and `inout`).
    pub fn bytes_written(&self) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.mode.writes())
            .map(|a| a.bytes)
            .sum()
    }

    /// Total bytes the task touches (each access counted once, `inout`
    /// counted once).
    pub fn bytes_touched(&self) -> u64 {
        self.accesses.iter().map(|a| a.bytes).sum()
    }

    /// Iterator over the regions the task writes.
    pub fn written_regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.accesses
            .iter()
            .filter(|a| a.mode.writes())
            .map(|a| a.region)
    }

    /// Iterator over the regions the task reads.
    pub fn read_regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.accesses
            .iter()
            .filter(|a| a.mode.reads())
            .map(|a| a.region)
    }
}

/// A task specification as submitted by the application, before an id has
/// been assigned by the builder.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TaskSpec {
    /// Human readable kind.
    pub kind: String,
    /// Compute cost estimate in work units.
    pub work_units: f64,
    /// Data accesses.
    pub accesses: Vec<DataAccess>,
}

impl TaskSpec {
    /// Starts a task specification of the given kind.
    pub fn new(kind: impl Into<String>) -> Self {
        TaskSpec {
            kind: kind.into(),
            work_units: 0.0,
            accesses: Vec::new(),
        }
    }

    /// Sets the compute cost.
    pub fn work(mut self, units: f64) -> Self {
        assert!(units >= 0.0, "work units must be non-negative");
        self.work_units = units;
        self
    }

    /// Adds an `in` access covering `bytes` of `region`.
    pub fn reads(mut self, region: RegionId, bytes: u64) -> Self {
        self.accesses.push(DataAccess::read(region, bytes));
        self
    }

    /// Adds an `out` access covering `bytes` of `region`.
    pub fn writes(mut self, region: RegionId, bytes: u64) -> Self {
        self.accesses.push(DataAccess::write(region, bytes));
        self
    }

    /// Adds an `inout` access covering `bytes` of `region`.
    pub fn reads_writes(mut self, region: RegionId, bytes: u64) -> Self {
        self.accesses.push(DataAccess::read_write(region, bytes));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mode_semantics() {
        assert!(AccessMode::In.reads());
        assert!(!AccessMode::In.writes());
        assert!(!AccessMode::Out.reads());
        assert!(AccessMode::Out.writes());
        assert!(AccessMode::InOut.reads());
        assert!(AccessMode::InOut.writes());
    }

    #[test]
    fn byte_accounting() {
        let t = TaskDescriptor {
            id: TaskId(0),
            kind: "gemm".into(),
            work_units: 10.0,
            accesses: vec![
                DataAccess::read(RegionId(0), 100),
                DataAccess::read(RegionId(1), 200),
                DataAccess::read_write(RegionId(2), 300),
            ],
        };
        assert_eq!(t.bytes_read(), 600);
        assert_eq!(t.bytes_written(), 300);
        assert_eq!(t.bytes_touched(), 600);
        assert_eq!(t.written_regions().collect::<Vec<_>>(), vec![RegionId(2)]);
        assert_eq!(t.read_regions().count(), 3);
    }

    #[test]
    fn spec_builder_chains() {
        let s = TaskSpec::new("axpy")
            .work(5.0)
            .reads(RegionId(0), 64)
            .writes(RegionId(1), 64);
        assert_eq!(s.kind, "axpy");
        assert_eq!(s.work_units, 5.0);
        assert_eq!(s.accesses.len(), 2);
        assert_eq!(s.accesses[0].mode, AccessMode::In);
        assert_eq!(s.accesses[1].mode, AccessMode::Out);
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(9).to_string(), "T9");
        assert_eq!(TaskId::from(3usize).index(), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_work_rejected() {
        let _ = TaskSpec::new("bad").work(-1.0);
    }
}
