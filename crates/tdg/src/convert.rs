//! Conversion of a (window of a) TDG into the undirected weighted graph the
//! partitioner consumes.
//!
//! The direction of a dependence is irrelevant for placement — what matters
//! is that the two tasks share data, and how much of it — so the TDG is
//! symmetrised. Edges into *later* windows are dropped (the partition of
//! later tasks is decided by the propagation policy, not by the partitioner),
//! but dependences from *earlier* windows — tasks whose placement is already
//! fixed — are reported as [`CrossEdge`]s so an anchored partitioner can
//! trade edge cut against affinity to the fixed data homes.
//! Vertex weights are the task compute costs, so the balance constraint of
//! the partitioner balances *work*, not just task counts.

use numadag_graph::CsrGraph;

use crate::graph::TaskGraph;
use crate::task::TaskId;
use crate::window::TaskWindow;

/// Result of converting a window: the undirected graph plus the mapping from
/// graph vertex to task id (vertex `i` is `tasks[i]`).
#[derive(Clone, Debug)]
pub struct WindowGraph {
    /// The symmetrised, weighted graph over the window's tasks.
    pub graph: CsrGraph,
    /// `tasks[v]` is the task id of vertex `v`.
    pub tasks: Vec<TaskId>,
    /// Dependences from tasks *before* the window (already placed by earlier
    /// windows) into this window's vertices. Empty when the window starts at
    /// the first task.
    pub cross_edges: Vec<CrossEdge>,
}

/// A dependence crossing into the window from a task placed by an earlier
/// window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossEdge {
    /// The window-local vertex on the receiving end.
    pub vertex: u32,
    /// The already-placed predecessor task (its id is below `window.start`).
    pub predecessor: TaskId,
    /// Dependence byte count, clamped to at least 1 like in-window edges.
    pub bytes: i64,
}

/// Converts the tasks of `window` into an undirected [`CsrGraph`].
///
/// * Edge weights are the dependence byte counts, clamped to at least 1 so
///   zero-byte control dependences still keep related tasks together.
/// * Vertex weights are the task work units rounded up to at least 1.
/// * Dependences from tasks before the window are returned as
///   [`CrossEdge`]s rather than graph edges: their endpoints are already
///   placed, so they are anchors, not free vertices.
pub fn window_to_csr(graph: &TaskGraph, window: &TaskWindow) -> WindowGraph {
    let tasks: Vec<TaskId> = window.task_ids().collect();
    let base = window.start.index();
    let mut vwgt = Vec::with_capacity(tasks.len());
    let mut edges: Vec<(u32, u32, i64)> = Vec::new();
    let mut cross_edges = Vec::new();
    for (v, &t) in tasks.iter().enumerate() {
        vwgt.push(graph.task(t).work_units.ceil().max(1.0) as i64);
        for &(succ, bytes) in graph.successors(t) {
            if window.contains(succ) {
                let u = succ.index() - base;
                edges.push((v as u32, u as u32, (bytes as i64).max(1)));
            }
        }
        for &(pred, bytes) in graph.predecessors(t) {
            if pred.index() < base {
                cross_edges.push(CrossEdge {
                    vertex: v as u32,
                    predecessor: pred,
                    bytes: (bytes as i64).max(1),
                });
            }
        }
    }
    WindowGraph {
        graph: CsrGraph::from_undirected_edges(tasks.len(), vwgt, &mut edges),
        tasks,
        cross_edges,
    }
}

/// Converts the entire TDG (all tasks) into an undirected [`CsrGraph`].
pub fn full_graph_to_csr(graph: &TaskGraph) -> WindowGraph {
    let window = TaskWindow::new(TaskId(0), TaskId(graph.num_tasks()));
    window_to_csr(graph, &window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TdgBuilder;
    use crate::task::TaskSpec;
    use crate::window::WindowConfig;

    fn diamond() -> TaskGraph {
        let mut b = TdgBuilder::new();
        let a = b.region(1000);
        let c = b.region(2000);
        let d = b.region(500);
        b.submit(
            TaskSpec::new("src")
                .work(1.0)
                .writes(a, 1000)
                .writes(c, 2000),
        );
        b.submit(TaskSpec::new("l").work(2.0).reads(a, 1000).writes(d, 500));
        b.submit(TaskSpec::new("r").work(3.0).reads(c, 2000));
        b.submit(TaskSpec::new("sink").work(4.0).reads(d, 500).reads(c, 2000));
        b.finish().0
    }

    #[test]
    fn full_conversion_symmetrises_and_weights() {
        let g = diamond();
        let wg = full_graph_to_csr(&g);
        assert_eq!(wg.graph.num_vertices(), 4);
        assert_eq!(wg.tasks.len(), 4);
        assert!(wg.graph.validate().is_ok());
        // Edge 0-1 carries the 1000 bytes of region `a`.
        assert_eq!(wg.graph.edge_weight(0, 1), Some(1000));
        // Edge 0-2 carries region `c`.
        assert_eq!(wg.graph.edge_weight(0, 2), Some(2000));
        // Vertex weights follow work units.
        assert_eq!(wg.graph.vertex_weight(0), 1);
        assert_eq!(wg.graph.vertex_weight(3), 4);
    }

    #[test]
    fn window_conversion_drops_external_edges() {
        let g = diamond();
        // Window with only the first two tasks: the 0-2 and *-3 edges vanish.
        let w = TaskWindow::initial(&g, WindowConfig::new(2));
        let wg = window_to_csr(&g, &w);
        assert_eq!(wg.graph.num_vertices(), 2);
        assert_eq!(wg.graph.num_edges(), 1);
        assert_eq!(wg.graph.edge_weight(0, 1), Some(1000));
        assert_eq!(wg.tasks, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn zero_work_and_zero_bytes_are_clamped() {
        let mut b = TdgBuilder::new();
        let r = b.region(0);
        b.submit(TaskSpec::new("a").work(0.0).writes(r, 0));
        b.submit(TaskSpec::new("b").work(0.0).reads(r, 0));
        let g = b.finish().0;
        let wg = full_graph_to_csr(&g);
        assert_eq!(wg.graph.vertex_weight(0), 1);
        assert_eq!(wg.graph.edge_weight(0, 1), Some(1));
        assert!(wg.graph.validate().is_ok());
    }

    #[test]
    fn empty_window_converts_to_empty_graph() {
        let g = diamond();
        let w = TaskWindow::new(TaskId(1), TaskId(1));
        let wg = window_to_csr(&g, &w);
        assert_eq!(wg.graph.num_vertices(), 0);
        assert!(wg.tasks.is_empty());
        assert!(wg.cross_edges.is_empty());
    }

    #[test]
    fn full_conversion_has_no_cross_edges() {
        let wg = full_graph_to_csr(&diamond());
        assert!(wg.cross_edges.is_empty());
    }

    #[test]
    fn later_window_reports_cross_edges_into_placed_tasks() {
        let g = diamond();
        // Second window: tasks 2 ("r") and 3 ("sink"). Task 2 reads region
        // `c` written by task 0; task 3 reads `d` from task 1 and `c` from
        // task 0 — all three dependences cross the window boundary.
        let w = TaskWindow::new(TaskId(2), TaskId(4));
        let wg = window_to_csr(&g, &w);
        assert_eq!(wg.graph.num_vertices(), 2);
        let mut crossings = wg.cross_edges.clone();
        crossings.sort_by_key(|c| (c.vertex, c.predecessor.index()));
        assert_eq!(
            crossings,
            vec![
                CrossEdge {
                    vertex: 0,
                    predecessor: TaskId(0),
                    bytes: 2000
                },
                CrossEdge {
                    vertex: 1,
                    predecessor: TaskId(0),
                    bytes: 2000
                },
                CrossEdge {
                    vertex: 1,
                    predecessor: TaskId(1),
                    bytes: 500
                },
            ]
        );
        // Every cross edge points at an already-placed task.
        for c in &wg.cross_edges {
            assert!(c.predecessor.index() < w.start.index());
        }
    }
}
