//! Self-contained workload descriptions.
//!
//! A [`TaskGraphSpec`] bundles everything an executor needs to run (or
//! simulate) a task-based application: the TDG, the sizes of the data regions
//! it references and, optionally, the expert-programmer placement the paper's
//! `EP` policy uses.

use std::sync::Arc;

use crate::graph::TaskGraph;
use crate::task::TaskId;

/// A complete workload: the task graph plus its data-region table.
///
/// The name and the graph are held by `Arc`: specs are cloned per sweep cell
/// (and their names copied into every execution report), so both must be
/// refcount bumps rather than deep copies.
#[derive(Clone, Debug)]
pub struct TaskGraphSpec {
    /// Human-readable name of the application (used in reports).
    pub name: Arc<str>,
    /// The task dependency graph.
    pub graph: Arc<TaskGraph>,
    /// Size in bytes of every region, indexed by region id.
    pub region_sizes: Vec<u64>,
    /// Expert-programmer placement: for each task, the socket (by index) the
    /// benchmark author would pin it to. `None` if the kernel does not define
    /// an expert schedule.
    pub ep_socket: Option<Vec<usize>>,
}

impl TaskGraphSpec {
    /// Creates a spec without an expert placement.
    pub fn new(
        name: impl Into<Arc<str>>,
        graph: impl Into<Arc<TaskGraph>>,
        region_sizes: Vec<u64>,
    ) -> Self {
        TaskGraphSpec {
            name: name.into(),
            graph: graph.into(),
            region_sizes,
            ep_socket: None,
        }
    }

    /// Attaches an expert-programmer placement (one socket index per task).
    ///
    /// # Panics
    /// Panics if the placement length does not match the number of tasks.
    pub fn with_ep_placement(mut self, placement: Vec<usize>) -> Self {
        assert_eq!(
            placement.len(),
            self.graph.num_tasks(),
            "EP placement must cover every task"
        );
        self.ep_socket = Some(placement);
        self
    }

    /// Number of tasks in the workload.
    pub fn num_tasks(&self) -> usize {
        self.graph.num_tasks()
    }

    /// Number of data regions in the workload.
    pub fn num_regions(&self) -> usize {
        self.region_sizes.len()
    }

    /// Total bytes across all regions.
    pub fn total_region_bytes(&self) -> u64 {
        self.region_sizes.iter().sum()
    }

    /// Expert socket for a task, if an expert placement exists.
    pub fn ep_socket_of(&self, task: TaskId) -> Option<usize> {
        self.ep_socket.as_ref().map(|v| v[task.index()])
    }

    /// A stable 64-bit content fingerprint of the workload.
    ///
    /// Hashes (FNV-1a) everything that determines execution behaviour: the
    /// name, every task's kind/work/accesses, the dependence edges with their
    /// byte weights, the region-size table and the expert placement. Two
    /// specs with identical content always fingerprint identically, across
    /// processes and runs — the report cache in `numadag-serve` uses this to
    /// content-address sweep results, so the hash must not depend on pointer
    /// identity, hash-map iteration order or `DefaultHasher` seeding.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(&self.name);
        h.write_u64(self.graph.num_tasks() as u64);
        h.write_u64(self.graph.num_edges() as u64);
        for task in self.graph.tasks() {
            h.write_str(&task.kind);
            h.write_u64(task.work_units.to_bits());
            h.write_u64(task.accesses.len() as u64);
            for access in &task.accesses {
                h.write_u64(access.region.index() as u64);
                h.write_u64(match access.mode {
                    crate::task::AccessMode::In => 0,
                    crate::task::AccessMode::Out => 1,
                    crate::task::AccessMode::InOut => 2,
                });
                h.write_u64(access.bytes);
            }
        }
        for id in self.graph.task_ids() {
            for &(succ, bytes) in self.graph.successors(id) {
                h.write_u64(succ.index() as u64);
                h.write_u64(bytes);
            }
        }
        for &size in &self.region_sizes {
            h.write_u64(size);
        }
        match &self.ep_socket {
            None => h.write_u64(u64::MAX),
            Some(placement) => {
                h.write_u64(placement.len() as u64);
                for &socket in placement {
                    h.write_u64(socket as u64);
                }
            }
        }
        h.finish()
    }

    /// Sanity checks: every task access refers to a known region, its byte
    /// count does not exceed the region size, and the graph is acyclic.
    /// Returns a human readable error description on failure.
    pub fn validate(&self) -> Result<(), String> {
        if !self.graph.is_acyclic() {
            return Err("task graph has a cycle".to_string());
        }
        for task in self.graph.tasks() {
            for access in &task.accesses {
                let idx = access.region.index();
                if idx >= self.region_sizes.len() {
                    return Err(format!(
                        "task {} accesses unknown region {}",
                        task.id, access.region
                    ));
                }
                if access.bytes > self.region_sizes[idx] {
                    return Err(format!(
                        "task {} accesses {} bytes of region {} which only has {}",
                        task.id, access.bytes, access.region, self.region_sizes[idx]
                    ));
                }
            }
        }
        if let Some(ep) = &self.ep_socket {
            if ep.len() != self.graph.num_tasks() {
                return Err("EP placement length mismatch".to_string());
            }
        }
        Ok(())
    }
}

/// Minimal FNV-1a 64-bit hasher: deterministic across runs and platforms,
/// unlike `std::collections::hash_map::DefaultHasher` which is seeded.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_byte(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_byte(byte);
        }
    }

    fn write_str(&mut self, value: &str) {
        self.write_u64(value.len() as u64);
        for byte in value.as_bytes() {
            self.write_byte(*byte);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TdgBuilder;
    use crate::task::TaskSpec;

    fn small_spec() -> TaskGraphSpec {
        let mut b = TdgBuilder::new();
        let r0 = b.region(128);
        let r1 = b.region(256);
        b.submit(TaskSpec::new("w0").work(1.0).writes(r0, 128));
        b.submit(TaskSpec::new("w1").work(1.0).writes(r1, 256));
        b.submit(TaskSpec::new("sum").work(2.0).reads(r0, 128).reads(r1, 256));
        let (graph, sizes) = b.finish();
        TaskGraphSpec::new("toy", graph, sizes)
    }

    #[test]
    fn spec_accessors() {
        let s = small_spec();
        assert_eq!(&*s.name, "toy");
        assert_eq!(s.num_tasks(), 3);
        assert_eq!(s.num_regions(), 2);
        assert_eq!(s.total_region_bytes(), 384);
        assert!(s.ep_socket_of(TaskId(0)).is_none());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn ep_placement_round_trip() {
        let s = small_spec().with_ep_placement(vec![0, 1, 0]);
        assert_eq!(s.ep_socket_of(TaskId(1)), Some(1));
        assert!(s.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "cover every task")]
    fn wrong_ep_length_rejected() {
        small_spec().with_ep_placement(vec![0, 1]);
    }

    #[test]
    fn validate_catches_oversized_access() {
        let mut s = small_spec();
        // Corrupt the region table to be smaller than the declared access.
        s.region_sizes[1] = 10;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_unknown_region() {
        let mut s = small_spec();
        s.region_sizes.pop();
        assert!(s.validate().is_err());
    }

    #[test]
    fn fingerprint_is_stable_for_equal_content() {
        let a = small_spec();
        let b = small_spec();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Known anchor: the fingerprint is a pure function of content, so it
        // must not drift between runs of the same build.
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn fingerprint_tracks_every_content_dimension() {
        let base = small_spec();
        let fp = base.fingerprint();

        let mut renamed = base.clone();
        renamed.name = "toy2".into();
        assert_ne!(fp, renamed.fingerprint(), "name must be hashed");

        let mut resized = base.clone();
        resized.region_sizes[0] += 1;
        assert_ne!(fp, resized.fingerprint(), "region sizes must be hashed");

        let placed = base.clone().with_ep_placement(vec![0, 1, 0]);
        assert_ne!(fp, placed.fingerprint(), "EP placement must be hashed");
        let other_placement = base.clone().with_ep_placement(vec![1, 1, 0]);
        assert_ne!(
            placed.fingerprint(),
            other_placement.fingerprint(),
            "distinct placements must differ"
        );

        let mut reworked = base.clone();
        reworked.graph = Arc::new({
            let mut b = TdgBuilder::new();
            let r0 = b.region(128);
            let r1 = b.region(256);
            b.submit(TaskSpec::new("w0").work(1.5).writes(r0, 128));
            b.submit(TaskSpec::new("w1").work(1.0).writes(r1, 256));
            b.submit(TaskSpec::new("sum").work(2.0).reads(r0, 128).reads(r1, 256));
            b.finish().0
        });
        assert_ne!(fp, reworked.fingerprint(), "task work must be hashed");
    }
}
