//! The task dependency graph (TDG).

use std::collections::HashMap;

use crate::task::{TaskDescriptor, TaskId};

/// A directed acyclic graph of tasks. Nodes are tasks in submission order;
/// edges carry the number of bytes of data flowing (or being serialised)
/// between the two tasks.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskDescriptor>,
    /// successors[t] = (successor task, bytes), deduplicated.
    successors: Vec<Vec<(TaskId, u64)>>,
    /// predecessors[t] = (predecessor task, bytes), deduplicated.
    predecessors: Vec<Vec<(TaskId, u64)>>,
    num_edges: usize,
}

impl TaskGraph {
    /// Creates an empty TDG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of (deduplicated) dependence edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task descriptor for `id`.
    pub fn task(&self, id: TaskId) -> &TaskDescriptor {
        &self.tasks[id.index()]
    }

    /// All task descriptors in submission order.
    pub fn tasks(&self) -> &[TaskDescriptor] {
        &self.tasks
    }

    /// All task ids in submission order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Successor edges of a task.
    pub fn successors(&self, id: TaskId) -> &[(TaskId, u64)] {
        &self.successors[id.index()]
    }

    /// Predecessor edges of a task.
    pub fn predecessors(&self, id: TaskId) -> &[(TaskId, u64)] {
        &self.predecessors[id.index()]
    }

    /// Number of predecessors of a task.
    pub fn in_degree(&self, id: TaskId) -> usize {
        self.predecessors[id.index()].len()
    }

    /// Number of successors of a task.
    pub fn out_degree(&self, id: TaskId) -> usize {
        self.successors[id.index()].len()
    }

    /// Tasks with no predecessors (ready at the start of the execution).
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.in_degree(t) == 0)
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.out_degree(t) == 0)
            .collect()
    }

    /// Appends a task and its dependence edges. `deps` is a list of
    /// `(predecessor, bytes)`; duplicates are merged by adding bytes.
    /// Intended to be called by [`crate::builder::TdgBuilder`], but public so
    /// synthetic graphs can be assembled directly in tests and benches.
    ///
    /// # Panics
    /// Panics if the descriptor's id is not the next dense id, or if a
    /// dependence refers to a not-yet-submitted task (which would create a
    /// cycle).
    pub fn push_task(&mut self, descriptor: TaskDescriptor, deps: &[(TaskId, u64)]) -> TaskId {
        let id = descriptor.id;
        assert_eq!(
            id.index(),
            self.tasks.len(),
            "tasks must be pushed in dense submission order"
        );
        let mut merged: HashMap<TaskId, u64> = HashMap::new();
        for &(pred, bytes) in deps {
            assert!(
                pred.index() < self.tasks.len(),
                "dependence on not-yet-submitted task {pred:?}"
            );
            assert_ne!(pred, id, "a task cannot depend on itself");
            *merged.entry(pred).or_default() += bytes;
        }
        self.tasks.push(descriptor);
        self.successors.push(Vec::new());
        let mut preds: Vec<(TaskId, u64)> = merged.into_iter().collect();
        preds.sort_by_key(|(t, _)| t.index());
        for &(pred, bytes) in &preds {
            self.successors[pred.index()].push((id, bytes));
            self.num_edges += 1;
        }
        self.predecessors.push(preds);
        id
    }

    /// Total bytes carried by all edges.
    pub fn total_edge_bytes(&self) -> u64 {
        self.predecessors
            .iter()
            .flat_map(|p| p.iter().map(|(_, b)| *b))
            .sum()
    }

    /// Total work units of all tasks.
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.work_units).sum()
    }

    /// Bytes on the edge `from → to`, if present.
    pub fn edge_bytes(&self, from: TaskId, to: TaskId) -> Option<u64> {
        self.successors[from.index()]
            .iter()
            .find(|(t, _)| *t == to)
            .map(|(_, b)| *b)
    }

    /// A topological order of the tasks. Because tasks are submitted in
    /// program order and edges only point forward, the submission order is
    /// already topological; this method additionally verifies it (and is the
    /// basis of [`Self::is_acyclic`]).
    pub fn topological_order(&self) -> Vec<TaskId> {
        let order: Vec<TaskId> = self.task_ids().collect();
        debug_assert!(self.is_acyclic());
        order
    }

    /// True if every edge points from a lower to a higher task id (which
    /// implies acyclicity).
    pub fn is_acyclic(&self) -> bool {
        self.task_ids().all(|t| {
            self.successors(t)
                .iter()
                .all(|(s, _)| s.index() > t.index())
        })
    }

    /// Length of the critical path in work units: the heaviest chain of tasks
    /// under the dependence relation. This bounds the best possible makespan
    /// of any schedule on any number of cores (ignoring memory time).
    pub fn critical_path_work(&self) -> f64 {
        let n = self.num_tasks();
        let mut finish = vec![0.0f64; n];
        for t in self.task_ids() {
            let start = self
                .predecessors(t)
                .iter()
                .map(|(p, _)| finish[p.index()])
                .fold(0.0f64, f64::max);
            finish[t.index()] = start + self.task(t).work_units;
        }
        finish.into_iter().fold(0.0f64, f64::max)
    }

    /// Average parallelism: total work divided by the critical path.
    pub fn average_parallelism(&self) -> f64 {
        let cp = self.critical_path_work();
        if cp == 0.0 {
            0.0
        } else {
            self.total_work() / cp
        }
    }

    /// The depth (longest chain measured in number of tasks) of each task,
    /// starting at 0 for sources. Useful for level-by-level analyses and for
    /// expert placements on wavefront codes.
    pub fn levels(&self) -> Vec<usize> {
        let n = self.num_tasks();
        let mut level = vec![0usize; n];
        for t in self.task_ids() {
            let l = self
                .predecessors(t)
                .iter()
                .map(|(p, _)| level[p.index()] + 1)
                .max()
                .unwrap_or(0);
            level[t.index()] = l;
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{DataAccess, TaskDescriptor};
    use numadag_numa::RegionId;

    fn task(id: usize, work: f64) -> TaskDescriptor {
        TaskDescriptor {
            id: TaskId(id),
            kind: format!("t{id}"),
            work_units: work,
            accesses: vec![DataAccess::write(RegionId(id), 8)],
        }
    }

    /// Diamond: 0 → {1, 2} → 3.
    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        g.push_task(task(0, 1.0), &[]);
        g.push_task(task(1, 2.0), &[(TaskId(0), 100)]);
        g.push_task(task(2, 3.0), &[(TaskId(0), 200)]);
        g.push_task(task(3, 1.0), &[(TaskId(1), 100), (TaskId(2), 200)]);
        g
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
        assert_eq!(g.in_degree(TaskId(3)), 2);
        assert_eq!(g.out_degree(TaskId(0)), 2);
        assert_eq!(g.edge_bytes(TaskId(0), TaskId(2)), Some(200));
        assert_eq!(g.edge_bytes(TaskId(1), TaskId(2)), None);
        assert!(g.is_acyclic());
        assert_eq!(g.total_edge_bytes(), 600);
    }

    #[test]
    fn critical_path_and_parallelism() {
        let g = diamond();
        // Critical path: 0 (1.0) → 2 (3.0) → 3 (1.0) = 5.0.
        assert!((g.critical_path_work() - 5.0).abs() < 1e-12);
        assert!((g.total_work() - 7.0).abs() < 1e-12);
        assert!((g.average_parallelism() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn levels_follow_longest_chain() {
        let g = diamond();
        assert_eq!(g.levels(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn duplicate_dependences_are_merged() {
        let mut g = TaskGraph::new();
        g.push_task(task(0, 1.0), &[]);
        g.push_task(task(1, 1.0), &[(TaskId(0), 100), (TaskId(0), 50)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_bytes(TaskId(0), TaskId(1)), Some(150));
    }

    #[test]
    fn empty_graph_properties() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.critical_path_work(), 0.0);
        assert_eq!(g.average_parallelism(), 0.0);
        assert!(g.sources().is_empty());
        assert!(g.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "dense submission order")]
    fn out_of_order_push_rejected() {
        let mut g = TaskGraph::new();
        g.push_task(task(1, 1.0), &[]);
    }

    #[test]
    #[should_panic(expected = "not-yet-submitted")]
    fn forward_dependence_rejected() {
        let mut g = TaskGraph::new();
        g.push_task(task(0, 1.0), &[(TaskId(5), 8)]);
    }

    #[test]
    fn topological_order_is_submission_order() {
        let g = diamond();
        let order = g.topological_order();
        assert_eq!(order, vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)]);
    }
}
