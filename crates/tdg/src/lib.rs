//! # numadag-tdg — tasks, data dependences and the task dependency graph
//!
//! Task-based programming models (OmpSs/Nanos++, OpenMP tasks with `depend`
//! clauses) let the programmer annotate each task with the data *regions* it
//! reads and writes. The runtime derives the task dependency graph (TDG) from
//! those annotations: an edge `a → b` means `b` must wait for `a`, and the
//! edge carries the number of bytes of the region that induced it. The TDG is
//! the metadata the paper's scheduling techniques exploit.
//!
//! This crate provides:
//!
//! * [`task`] — task descriptors and data accesses (`in`/`out`/`inout`).
//! * [`deps`] — incremental dependence derivation with OpenMP `depend`
//!   semantics (RAW, WAR and WAW ordering per region).
//! * [`graph`] — the [`graph::TaskGraph`] itself with topological utilities
//!   (sources, topological order, critical path, acyclicity checks).
//! * [`builder`] — [`builder::TdgBuilder`], the front door: submit tasks in
//!   program order and get the TDG.
//! * [`window`] — task windows, the unit RGP partitions.
//! * [`convert`] — symmetrisation of (a window of) the TDG into the weighted
//!   undirected [`numadag_graph::CsrGraph`] the partitioner consumes.
//! * [`spec`] — [`spec::TaskGraphSpec`], a self-contained workload
//!   description (TDG + region sizes + optional expert placement) produced by
//!   the kernels crate and consumed by the runtime.

#![warn(missing_docs)]

pub mod builder;
pub mod convert;
pub mod deps;
pub mod graph;
pub mod spec;
pub mod task;
pub mod window;

pub use builder::TdgBuilder;
pub use convert::{window_to_csr, CrossEdge, WindowGraph};
pub use graph::TaskGraph;
pub use spec::TaskGraphSpec;
pub use task::{AccessMode, DataAccess, TaskDescriptor, TaskId, TaskSpec};
pub use window::{TaskWindow, WindowConfig, WindowCursor};
