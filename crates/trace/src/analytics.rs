//! Analytics over a collected [`Trace`]: what bounded the makespan, where
//! the bytes went, how local each task was, and how deep the socket queues
//! ran.
//!
//! Everything here is pure post-processing — no executor involvement — so
//! the same analyses apply to simulator traces (exact simulated times) and
//! threaded traces (measured wall-clock times).

use numadag_numa::SocketId;
use numadag_tdg::{TaskGraph, TaskId};

use crate::event::TraceEvent;
use crate::trace::Trace;

/// Why a critical-path task could not have started earlier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpBound {
    /// First task of the chain (started at the beginning of the execution).
    Source,
    /// The task started the moment its last dependence finished: the chain
    /// is bound by the DAG (and by where the predecessor's data ended up).
    Dependency,
    /// The task was ready earlier but every core of its socket was busy; it
    /// started the moment the previous task on its core finished.
    CoreBusy,
}

/// One task on the extracted critical path.
#[derive(Clone, Copy, Debug)]
pub struct CpLink {
    /// The task.
    pub task: TaskId,
    /// Execution start (ns).
    pub start: f64,
    /// Execution end (ns).
    pub end: f64,
    /// Socket the task ran on.
    pub socket: SocketId,
    /// What the task was waiting on before it started.
    pub bound: CpBound,
}

impl CpLink {
    /// Duration of this link (ns).
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The critical path of an executed schedule: the chain of tasks, linked by
/// dependence or core-occupancy edges, that ends at the task finishing last.
///
/// The total time of the chain is at most the makespan (links never overlap
/// in time); on a gap-free schedule — which the work-conserving simulator
/// always produces — it equals the makespan exactly, and the interesting
/// output is the *composition*: how much of the bound is dependences (the
/// DAG and data placement) versus busy cores (load imbalance).
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// The chain, in execution order (first link first).
    pub links: Vec<CpLink>,
    /// Sum of link durations (ns); ≤ the trace's makespan.
    pub time_ns: f64,
    /// Time on links that were dependence-bound (ns), the `Source` link
    /// included.
    pub dependency_time_ns: f64,
    /// Time on links that were core-occupancy-bound (ns).
    pub core_busy_time_ns: f64,
}

impl CriticalPath {
    /// The tasks of the chain in execution order.
    pub fn tasks(&self) -> Vec<TaskId> {
        self.links.iter().map(|l| l.task).collect()
    }
}

/// Per-socket-pair and per-distance traffic totals of one trace.
#[derive(Clone, Debug)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major `n × n`: `bytes[from * n + to]` = bytes cores of socket
    /// `to` pulled from memory of socket `from`.
    bytes: Vec<u64>,
    /// `(distance, bytes)` totals, ascending by distance.
    by_distance: Vec<(u32, u64)>,
}

impl TrafficMatrix {
    /// Number of sockets covered.
    pub fn num_sockets(&self) -> usize {
        self.n
    }

    /// Bytes moved from memory of `from` to cores of `to`.
    pub fn bytes(&self, from: usize, to: usize) -> u64 {
        self.bytes[from * self.n + to]
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes moved at each SLIT distance, ascending by distance.
    pub fn by_distance(&self) -> &[(u32, u64)] {
        &self.by_distance
    }

    /// Bytes served at the local distance (10).
    pub fn local_bytes(&self) -> u64 {
        (0..self.n).map(|s| self.bytes(s, s)).sum()
    }
}

/// Histogram of per-task locality: how many tasks had which fraction of
/// their accessed bytes served locally.
#[derive(Clone, Debug)]
pub struct LocalityHistogram {
    /// `buckets[i]` counts tasks with local fraction in
    /// `[i/len, (i+1)/len)`; the last bucket includes 1.0. Tasks that moved
    /// no bytes count as fully local.
    pub buckets: Vec<usize>,
    /// Mean per-task local fraction.
    pub mean: f64,
}

/// One change of a socket queue's depth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueSample {
    /// When the depth changed (ns).
    pub time: f64,
    /// The socket whose queue changed.
    pub socket: SocketId,
    /// Queue depth after the change.
    pub depth: usize,
}

/// Timeline of socket-queue depths, reconstructed from `Assign` (enqueue)
/// and `Start` (dequeue) events.
#[derive(Clone, Debug, Default)]
pub struct QueueTimeline {
    /// Every depth change, in event order.
    pub samples: Vec<QueueSample>,
    /// Maximum depth each socket's queue reached.
    pub max_depth: Vec<usize>,
}

impl Trace {
    /// Extracts the critical path of the executed schedule.
    ///
    /// Starting from the task that finished last, each step follows the edge
    /// that explains the current task's start time: the DAG predecessor
    /// whose finish coincides with the start (dependence-bound), or the task
    /// on the same core that finished exactly when this one started
    /// (core-occupancy-bound). Ties favour the dependence edge, which is the
    /// one a scheduling policy can actually influence.
    pub fn critical_path(&self, graph: &TaskGraph) -> CriticalPath {
        self.critical_path_from(&self.task_intervals(), graph)
    }

    /// [`Trace::critical_path`] over intervals the caller already extracted
    /// (the comparison layer reuses its interval vectors instead of
    /// re-scanning the whole event list).
    pub(crate) fn critical_path_from(
        &self,
        intervals: &[Option<crate::trace::TaskInterval>],
        graph: &TaskGraph,
    ) -> CriticalPath {
        let Some((last, _)) = intervals
            .iter()
            .enumerate()
            .filter_map(|(t, i)| i.map(|i| (t, i.end)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            return CriticalPath::default();
        };

        // Per-core execution history, time-ordered, to resolve core-bound
        // links without scanning every task per step.
        let mut by_core: std::collections::BTreeMap<usize, Vec<TaskId>> = Default::default();
        for (t, interval) in intervals.iter().enumerate() {
            if let Some(i) = interval {
                by_core.entry(i.core.index()).or_default().push(TaskId(t));
            }
        }
        for tasks in by_core.values_mut() {
            tasks.sort_by(|a, b| {
                intervals[a.index()]
                    .unwrap()
                    .start
                    .total_cmp(&intervals[b.index()].unwrap().start)
            });
        }

        let tolerance = 1e-9 * self.makespan_ns.max(1.0) + 1e-9;
        let mut links: Vec<CpLink> = Vec::new();
        let mut current = TaskId(last);
        loop {
            let interval = intervals[current.index()].expect("task on chain has an interval");
            let start = interval.start;

            // Best dependence edge: the predecessor finishing last (but not
            // after `start`, modulo wall-clock measurement skew).
            let dep = graph
                .predecessors(current)
                .iter()
                .filter_map(|(p, _)| intervals[p.index()].map(|i| (*p, i.end)))
                .filter(|(_, end)| *end <= start + tolerance)
                .max_by(|a, b| a.1.total_cmp(&b.1));

            // Core-occupancy edge: the task that ran just before this one on
            // the same core, if it finished exactly when this one started.
            let core_pred = by_core
                .get(&interval.core.index())
                .and_then(|tasks| {
                    let pos = tasks.iter().position(|t| *t == current)?;
                    pos.checked_sub(1).map(|p| tasks[p])
                })
                .and_then(|p| intervals[p.index()].map(|i| (p, i.end)));

            let (bound, next) = match (dep, core_pred) {
                (Some((p, end)), _) if (start - end).abs() <= tolerance => {
                    (CpBound::Dependency, Some(p))
                }
                (_, Some((p, end))) if (start - end).abs() <= tolerance => {
                    (CpBound::CoreBusy, Some(p))
                }
                // No edge coincides with the start (threaded traces have
                // measurement gaps): fall back to the best dependence edge,
                // or end the chain at the schedule's beginning.
                (Some((p, _)), _) if start > tolerance => (CpBound::Dependency, Some(p)),
                _ => (CpBound::Source, None),
            };
            links.push(CpLink {
                task: current,
                start,
                end: interval.end,
                socket: interval.socket,
                bound,
            });
            match next {
                Some(p) => current = p,
                None => break,
            }
        }
        links.reverse();

        let mut cp = CriticalPath {
            time_ns: links.iter().map(CpLink::duration).sum(),
            ..CriticalPath::default()
        };
        for link in &links {
            match link.bound {
                CpBound::CoreBusy => cp.core_busy_time_ns += link.duration(),
                _ => cp.dependency_time_ns += link.duration(),
            }
        }
        cp.links = links;
        cp
    }

    /// The socket × socket traffic matrix of the trace (plus per-distance
    /// totals).
    pub fn traffic_matrix(&self) -> TrafficMatrix {
        let n = self.num_sockets;
        let mut bytes = vec![0u64; n * n];
        let mut by_distance: std::collections::BTreeMap<u32, u64> = Default::default();
        for event in &self.events {
            if let TraceEvent::Traffic {
                from,
                to,
                distance,
                bytes: b,
                ..
            } = event
            {
                bytes[from.index() * n + to.index()] += b;
                *by_distance.entry(*distance).or_default() += b;
            }
        }
        TrafficMatrix {
            n,
            bytes,
            by_distance: by_distance.into_iter().collect(),
        }
    }

    /// Histogram of per-task local fractions over `buckets` equal bins.
    ///
    /// # Panics
    /// Panics if `buckets` is zero.
    pub fn locality_histogram(&self, buckets: usize) -> LocalityHistogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        let mut local = vec![0u64; self.tasks];
        let mut total = vec![0u64; self.tasks];
        for event in &self.events {
            if let TraceEvent::Traffic {
                task,
                from,
                to,
                bytes,
                ..
            } = event
            {
                total[task.index()] += bytes;
                if from == to {
                    local[task.index()] += bytes;
                }
            }
        }
        let mut histogram = LocalityHistogram {
            buckets: vec![0; buckets],
            mean: 0.0,
        };
        for t in 0..self.tasks {
            let fraction = if total[t] == 0 {
                1.0
            } else {
                local[t] as f64 / total[t] as f64
            };
            let bucket = ((fraction * buckets as f64) as usize).min(buckets - 1);
            histogram.buckets[bucket] += 1;
            histogram.mean += fraction;
        }
        if self.tasks > 0 {
            histogram.mean /= self.tasks as f64;
        }
        histogram
    }

    /// Reconstructs the per-socket queue-depth timeline. A task enters its
    /// assigned socket's queue at its `Assign` event and leaves it at its
    /// `Start` event (steals drain the queue the task was assigned to).
    pub fn queue_depth_timeline(&self) -> QueueTimeline {
        let mut assigned: Vec<Option<SocketId>> = vec![None; self.tasks];
        let mut depth = vec![0usize; self.num_sockets];
        let mut timeline = QueueTimeline {
            samples: Vec::new(),
            max_depth: vec![0; self.num_sockets],
        };
        for event in &self.events {
            match event {
                TraceEvent::Assign { task, socket, time } => {
                    assigned[task.index()] = Some(*socket);
                    depth[socket.index()] += 1;
                    timeline.max_depth[socket.index()] =
                        timeline.max_depth[socket.index()].max(depth[socket.index()]);
                    timeline.samples.push(QueueSample {
                        time: *time,
                        socket: *socket,
                        depth: depth[socket.index()],
                    });
                }
                TraceEvent::Start { task, time, .. } => {
                    let Some(socket) = assigned[task.index()] else {
                        continue;
                    };
                    depth[socket.index()] = depth[socket.index()].saturating_sub(1);
                    timeline.samples.push(QueueSample {
                        time: *time,
                        socket,
                        depth: depth[socket.index()],
                    });
                }
                _ => {}
            }
        }
        timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_numa::{CoreId, NodeId};

    /// Chain 0 → 1 → 2 on one core, gap-free (the degenerate serial
    /// schedule where the critical path must equal the makespan).
    fn serial_trace() -> (Trace, TaskGraph) {
        use numadag_tdg::{DataAccess, TaskDescriptor};
        let mut graph = TaskGraph::new();
        for t in 0..3 {
            let deps: Vec<(TaskId, u64)> = if t == 0 {
                vec![]
            } else {
                vec![(TaskId(t - 1), 8)]
            };
            graph.push_task(
                TaskDescriptor {
                    id: TaskId(t),
                    kind: "step".into(),
                    work_units: 10.0,
                    accesses: vec![DataAccess::read_write(numadag_numa::RegionId(0), 8)],
                },
                &deps,
            );
        }
        let mut events = Vec::new();
        for t in 0..3 {
            let start = 10.0 * t as f64;
            events.push(TraceEvent::Assign {
                task: TaskId(t),
                socket: SocketId(0),
                time: start,
            });
            events.push(TraceEvent::Start {
                task: TaskId(t),
                socket: SocketId(0),
                core: CoreId(0),
                time: start,
                stolen: false,
            });
            events.push(TraceEvent::Traffic {
                task: TaskId(t),
                region: 0,
                from: NodeId(0),
                to: NodeId(0),
                distance: 10,
                bytes: 8,
                time: start,
            });
            events.push(TraceEvent::Finish {
                task: TaskId(t),
                socket: SocketId(0),
                core: CoreId(0),
                time: start + 10.0,
            });
        }
        let trace = Trace {
            workload: "chain".to_string(),
            policy: "LAS".to_string(),
            backend: "simulator".to_string(),
            scale: "custom".to_string(),
            repetition: 0,
            tasks: 3,
            num_sockets: 1,
            makespan_ns: 30.0,
            events,
        };
        (trace, graph)
    }

    #[test]
    fn serial_chain_critical_path_equals_makespan() {
        let (trace, graph) = serial_trace();
        let cp = trace.critical_path(&graph);
        assert_eq!(cp.tasks(), vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert!((cp.time_ns - trace.makespan_ns).abs() < 1e-9);
        assert_eq!(cp.links[0].bound, CpBound::Source);
        assert_eq!(cp.links[1].bound, CpBound::Dependency);
        assert_eq!(cp.core_busy_time_ns, 0.0);
    }

    #[test]
    fn core_busy_links_are_classified() {
        // Two independent tasks forced onto one core: the second is bound by
        // core occupancy, not by a dependence.
        use numadag_tdg::{DataAccess, TaskDescriptor};
        let mut graph = TaskGraph::new();
        for t in 0..2 {
            graph.push_task(
                TaskDescriptor {
                    id: TaskId(t),
                    kind: "independent".into(),
                    work_units: 5.0,
                    accesses: vec![DataAccess::write(numadag_numa::RegionId(t), 8)],
                },
                &[],
            );
        }
        let events = vec![
            TraceEvent::Assign {
                task: TaskId(0),
                socket: SocketId(0),
                time: 0.0,
            },
            TraceEvent::Assign {
                task: TaskId(1),
                socket: SocketId(0),
                time: 0.0,
            },
            TraceEvent::Start {
                task: TaskId(0),
                socket: SocketId(0),
                core: CoreId(0),
                time: 0.0,
                stolen: false,
            },
            TraceEvent::Finish {
                task: TaskId(0),
                socket: SocketId(0),
                core: CoreId(0),
                time: 5.0,
            },
            TraceEvent::Start {
                task: TaskId(1),
                socket: SocketId(0),
                core: CoreId(0),
                time: 5.0,
                stolen: false,
            },
            TraceEvent::Finish {
                task: TaskId(1),
                socket: SocketId(0),
                core: CoreId(0),
                time: 10.0,
            },
        ];
        let trace = Trace {
            workload: "pair".to_string(),
            policy: "DFIFO".to_string(),
            backend: "simulator".to_string(),
            scale: "custom".to_string(),
            repetition: 0,
            tasks: 2,
            num_sockets: 1,
            makespan_ns: 10.0,
            events,
        };
        let cp = trace.critical_path(&graph);
        assert_eq!(cp.tasks(), vec![TaskId(0), TaskId(1)]);
        assert_eq!(cp.links[1].bound, CpBound::CoreBusy);
        assert!((cp.core_busy_time_ns - 5.0).abs() < 1e-9);
        assert!((cp.time_ns - 10.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_matrix_and_locality_histogram() {
        let trace = crate::trace::tests::toy_trace();
        let matrix = trace.traffic_matrix();
        assert_eq!(matrix.num_sockets(), 2);
        assert_eq!(matrix.bytes(0, 0), 256);
        assert_eq!(matrix.bytes(0, 1), 256);
        assert_eq!(matrix.total_bytes(), 512);
        assert_eq!(matrix.local_bytes(), 256);
        assert_eq!(matrix.by_distance(), &[(10, 256), (21, 256)]);

        let histogram = trace.locality_histogram(4);
        // Task 0 fully local (last bucket), task 1 fully remote (first).
        assert_eq!(histogram.buckets, vec![1, 0, 0, 1]);
        assert!((histogram.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn queue_timeline_tracks_assign_and_start() {
        let trace = crate::trace::tests::toy_trace();
        let timeline = trace.queue_depth_timeline();
        // Both tasks were assigned to socket 0; depth peaks at 1 (task 1 is
        // enqueued only after task 0 started).
        assert_eq!(timeline.max_depth, vec![1, 0]);
        let last = timeline.samples.last().unwrap();
        assert_eq!(last.depth, 0);
        assert_eq!(timeline.samples.len(), 4);
    }

    #[test]
    fn empty_trace_has_empty_critical_path() {
        let trace = Trace {
            workload: "empty".to_string(),
            policy: "LAS".to_string(),
            backend: "simulator".to_string(),
            scale: "custom".to_string(),
            repetition: 0,
            tasks: 0,
            num_sockets: 1,
            makespan_ns: 0.0,
            events: Vec::new(),
        };
        let cp = trace.critical_path(&TaskGraph::new());
        assert!(cp.links.is_empty());
        assert_eq!(cp.time_ns, 0.0);
    }
}
