//! The trace event model and the sinks executors emit into.
//!
//! Executors record [`TraceEvent`]s through a [`TraceSink`] carried on their
//! configuration. The default sink is [`NullSink`], which reports itself
//! disabled so the executors skip event construction entirely (tracing is
//! zero-cost unless a real sink is installed); [`MemorySink`] buffers events
//! in memory for the analytics layer.

use parking_lot::Mutex;

use numadag_numa::{CoreId, NodeId, SocketId};
use numadag_tdg::TaskId;

/// One observation of the runtime, timestamped in nanoseconds (simulated
/// time for the simulator, wall-clock time since execution start for the
/// threaded executor).
///
/// A complete execution trace contains exactly one `Assign`, one `Start` and
/// one `Finish` per task, plus any number of `DeferredAlloc` and `Traffic`
/// events.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// The scheduling policy decided which socket a ready task goes to.
    Assign {
        /// The task that became ready.
        task: TaskId,
        /// The socket the policy pushed it to.
        socket: SocketId,
        /// When the decision was made (ns).
        time: f64,
    },
    /// A core picked the task up and began executing it.
    Start {
        /// The task.
        task: TaskId,
        /// Socket the task actually runs on (differs from the assigned
        /// socket when `stolen` is true).
        socket: SocketId,
        /// Core the task runs on.
        core: CoreId,
        /// Execution start time (ns).
        time: f64,
        /// True if an idle core of another socket stole the task.
        stolen: bool,
    },
    /// The task completed.
    Finish {
        /// The task.
        task: TaskId,
        /// Socket the task ran on.
        socket: SocketId,
        /// Core the task ran on.
        core: CoreId,
        /// Completion time (ns).
        time: f64,
    },
    /// Deferred allocation: regions first-touched by this task were placed
    /// on the executing node.
    DeferredAlloc {
        /// The task whose execution placed the bytes.
        task: TaskId,
        /// The node the bytes now live on.
        node: NodeId,
        /// Total bytes placed for this task.
        bytes: u64,
        /// When the placement happened (ns).
        time: f64,
    },
    /// Bytes of one region access moved between a home node and the
    /// executing node, at the topology's SLIT distance.
    Traffic {
        /// The task performing the access.
        task: TaskId,
        /// Region index of the access (see
        /// [`numadag_tdg::TaskGraphSpec::region_sizes`]).
        region: usize,
        /// Node holding the bytes.
        from: NodeId,
        /// Node of the executing core.
        to: NodeId,
        /// SLIT distance of the transfer (10 = local).
        distance: u32,
        /// Bytes moved.
        bytes: u64,
        /// When the access happened (ns).
        time: f64,
    },
}

impl TraceEvent {
    /// The event's timestamp (ns).
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::Assign { time, .. }
            | TraceEvent::Start { time, .. }
            | TraceEvent::Finish { time, .. }
            | TraceEvent::DeferredAlloc { time, .. }
            | TraceEvent::Traffic { time, .. } => *time,
        }
    }

    /// The task the event concerns.
    pub fn task(&self) -> TaskId {
        match self {
            TraceEvent::Assign { task, .. }
            | TraceEvent::Start { task, .. }
            | TraceEvent::Finish { task, .. }
            | TraceEvent::DeferredAlloc { task, .. }
            | TraceEvent::Traffic { task, .. } => *task,
        }
    }

    /// Stable lowercase tag used in the JSON serialization.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Assign { .. } => "assign",
            TraceEvent::Start { .. } => "start",
            TraceEvent::Finish { .. } => "finish",
            TraceEvent::DeferredAlloc { .. } => "deferred_alloc",
            TraceEvent::Traffic { .. } => "traffic",
        }
    }
}

/// Where executors send trace events.
///
/// Sinks are shared (`Arc<dyn TraceSink>`) between an execution's worker
/// threads, so implementations must be `Send + Sync` and use interior
/// mutability.
pub trait TraceSink: Send + Sync {
    /// Whether events should be produced at all. Executors check this once
    /// per emission site and skip event construction when it returns
    /// `false`, which is what makes the disabled path zero-cost.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, event: TraceEvent);
}

/// The default sink: disabled, drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// A sink that buffers every event in memory, in arrival order.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign(task: usize, time: f64) -> TraceEvent {
        TraceEvent::Assign {
            task: TaskId(task),
            socket: SocketId(0),
            time,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = NullSink;
        assert!(!sink.is_enabled());
        sink.record(assign(0, 1.0)); // must not panic
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        assert!(sink.is_enabled());
        assert!(sink.is_empty());
        sink.record(assign(0, 1.0));
        sink.record(assign(1, 2.0));
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].task(), TaskId(0));
        assert_eq!(events[1].time(), 2.0);
        assert!(sink.is_empty());
    }

    #[test]
    fn event_accessors_cover_every_variant() {
        let events = [
            assign(3, 1.0),
            TraceEvent::Start {
                task: TaskId(3),
                socket: SocketId(1),
                core: CoreId(4),
                time: 2.0,
                stolen: true,
            },
            TraceEvent::Finish {
                task: TaskId(3),
                socket: SocketId(1),
                core: CoreId(4),
                time: 3.0,
            },
            TraceEvent::DeferredAlloc {
                task: TaskId(3),
                node: NodeId(1),
                bytes: 64,
                time: 2.0,
            },
            TraceEvent::Traffic {
                task: TaskId(3),
                region: 0,
                from: NodeId(0),
                to: NodeId(1),
                distance: 21,
                bytes: 128,
                time: 2.0,
            },
        ];
        let tags: Vec<&str> = events.iter().map(|e| e.tag()).collect();
        assert_eq!(
            tags,
            vec!["assign", "start", "finish", "deferred_alloc", "traffic"]
        );
        for e in &events {
            assert_eq!(e.task(), TaskId(3));
            assert!(e.time() > 0.0);
        }
    }
}
