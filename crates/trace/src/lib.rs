//! # numadag-trace — execution traces and the analytics that explain them
//!
//! The sweep reports of `numadag-runtime` are end-of-run aggregates: a
//! makespan, a locality fraction, a geomean. When a per-application number
//! diverges from the paper's Figure 1, aggregates cannot say *where* in the
//! schedule a policy lost its locality advantage. This crate makes
//! executions observable:
//!
//! * [`TraceEvent`] — the event model both executors emit: policy `assign`
//!   decisions, task `start`/`finish` with socket, core and timestamp
//!   (steals flagged), deferred-allocation placements, and per-access
//!   traffic with NUMA distance.
//! * [`TraceSink`] — where events go. The default [`NullSink`] reports
//!   itself disabled, so executors skip event construction entirely and
//!   tracing is zero-cost unless requested; [`MemorySink`] buffers events
//!   for analysis, and [`TraceCollector`] accumulates one [`Trace`] per
//!   cell of a traced sweep.
//! * [`Trace`] — the container: metadata + events, with a pretty-printed
//!   JSON serialization that round-trips through [`Trace::from_json_str`]
//!   (and streams to disk via [`Trace::to_json_writer`]).
//! * [`analytics`] — post-processing: schedule critical-path extraction
//!   (dependence-bound vs core-busy links), socket × socket and
//!   per-distance traffic matrices, per-task locality histograms, and
//!   queue-depth timelines.
//! * [`compare`] — the two-policy comparison ([`Trace::compare`]): given
//!   the same workload traced under two policies, rank the tasks and data
//!   flows where one loses time to the other — the tool for localizing the
//!   per-app Figure 1 divergences.
//!
//! The runtime wires sinks through `ExecutionConfig::with_trace_sink` and
//! sweeps through `Experiment::trace`; the `figure1 --trace-dir` and
//! `ablation trace` CLI modes expose both end to end.

#![warn(missing_docs)]

pub mod analytics;
pub mod compare;
pub mod event;
pub mod trace;

pub use analytics::{
    CpBound, CpLink, CriticalPath, LocalityHistogram, QueueSample, QueueTimeline, TrafficMatrix,
};
pub use compare::{FlowDelta, TaskDelta, TraceComparison};
pub use event::{MemorySink, NullSink, TraceEvent, TraceSink};
pub use trace::{parse_event, TaskInterval, Trace, TraceCollector};
