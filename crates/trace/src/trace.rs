//! The [`Trace`] container: one execution's events plus the metadata needed
//! to interpret them, with a JSON serialization that round-trips through
//! [`Trace::from_json_str`].

use parking_lot::Mutex;
use serde::{Serialize, Value};

use numadag_numa::{CoreId, NodeId, SocketId};
use numadag_tdg::TaskId;

use crate::event::TraceEvent;

/// A complete execution trace: which workload ran under which policy on
/// which backend, and every event the executor emitted.
///
/// Traces are produced by the executors in `numadag-runtime` (through a
/// [`crate::MemorySink`] installed on the execution configuration) and by
/// the sweep driver for every cell of a traced `Experiment`. The analytics
/// layer ([`crate::analytics`], [`crate::compare`]) works on this type.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Workload label (application name or spec name).
    pub workload: String,
    /// Canonical policy label.
    pub policy: String,
    /// Backend that produced the trace (`"simulator"`, `"threaded"` or
    /// `"proc"`).
    pub backend: String,
    /// Problem-scale label (`"Tiny"`, `"Small"`, `"Full"` or `"custom"`).
    pub scale: String,
    /// Repetition index of the sweep cell this trace came from.
    pub repetition: usize,
    /// Number of tasks in the workload.
    pub tasks: usize,
    /// Number of sockets of the machine the trace was recorded on.
    pub num_sockets: usize,
    /// Makespan of the traced execution (ns).
    pub makespan_ns: f64,
    /// Every event, in emission order.
    pub events: Vec<TraceEvent>,
}

/// Per-task execution interval extracted from a trace's `Start`/`Finish`
/// events (`None` for tasks the trace never saw run).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskInterval {
    /// Execution start (ns).
    pub start: f64,
    /// Execution end (ns).
    pub end: f64,
    /// Socket the task ran on.
    pub socket: SocketId,
    /// Core the task ran on.
    pub core: CoreId,
    /// Socket the policy originally assigned (equals `socket` unless the
    /// task was stolen).
    pub assigned: SocketId,
    /// True if the task was stolen.
    pub stolen: bool,
}

impl TaskInterval {
    /// Execution duration (ns).
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

impl Trace {
    /// Events of one kind, by their serialization tag.
    pub fn events_tagged<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.tag() == tag)
    }

    /// Per-task execution intervals, indexed by task id. A well-formed trace
    /// has an interval for every task.
    pub fn task_intervals(&self) -> Vec<Option<TaskInterval>> {
        let mut assigned: Vec<Option<SocketId>> = vec![None; self.tasks];
        let mut intervals: Vec<Option<TaskInterval>> = vec![None; self.tasks];
        for event in &self.events {
            match event {
                TraceEvent::Assign { task, socket, .. } => {
                    assigned[task.index()] = Some(*socket);
                }
                TraceEvent::Start {
                    task,
                    socket,
                    core,
                    time,
                    stolen,
                } => {
                    intervals[task.index()] = Some(TaskInterval {
                        start: *time,
                        end: *time,
                        socket: *socket,
                        core: *core,
                        assigned: assigned[task.index()].unwrap_or(*socket),
                        stolen: *stolen,
                    });
                }
                TraceEvent::Finish { task, time, .. } => {
                    if let Some(interval) = intervals[task.index()].as_mut() {
                        interval.end = *time;
                    }
                }
                _ => {}
            }
        }
        intervals
    }

    /// Checks the structural invariants every complete trace satisfies:
    /// exactly one `Assign`, `Start` and `Finish` per task, `Finish` never
    /// before `Start`, and timestamps within `[0, makespan]` (with a small
    /// tolerance for the threaded backend's wall-clock measurement skew).
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut counts = vec![[0usize; 3]; self.tasks];
        for event in &self.events {
            let t = event.task().index();
            if t >= self.tasks {
                return Err(format!("{} event for out-of-range task {t}", event.tag()));
            }
            let slot = match event {
                TraceEvent::Assign { .. } => 0,
                TraceEvent::Start { .. } => 1,
                TraceEvent::Finish { .. } => 2,
                _ => continue,
            };
            counts[t][slot] += 1;
        }
        for (t, c) in counts.iter().enumerate() {
            if *c != [1, 1, 1] {
                return Err(format!(
                    "task {t}: expected 1 assign/start/finish, saw {c:?}"
                ));
            }
        }
        let tolerance = 1e-6 * self.makespan_ns.max(1.0);
        for interval in self.task_intervals().iter().flatten() {
            if interval.end < interval.start {
                return Err(format!("interval ends before it starts: {interval:?}"));
            }
            if interval.start < 0.0 || interval.end > self.makespan_ns + tolerance {
                return Err(format!(
                    "interval {interval:?} outside [0, makespan {}]",
                    self.makespan_ns
                ));
            }
        }
        Ok(())
    }

    /// Pretty-printed JSON of the whole trace.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Streams the pretty-printed JSON into `writer` without materializing
    /// the document — neither as one string nor as one `Value` tree (the
    /// vendored `serde_json::to_writer_pretty` builds the whole tree first,
    /// which for a trace means a copy of every event; trace files grow with
    /// event count, so the events are rendered and written one at a time
    /// here). The bytes are exactly [`Trace::to_json_string`]'s.
    pub fn to_json_writer(&self, writer: &mut dyn std::io::Write) -> Result<(), String> {
        let io = |e: std::io::Error| format!("I/O error while writing trace JSON: {e}");
        let scalar = |v: &Value| serde_json::to_string(v).expect("scalar serialization is total");
        // Header scalars, rendered through the same vendored serializer so
        // escaping and number formatting match the all-at-once path.
        let header: [(&str, Value); 8] = [
            ("workload", self.workload.to_value()),
            ("policy", self.policy.to_value()),
            ("backend", self.backend.to_value()),
            ("scale", self.scale.to_value()),
            ("repetition", self.repetition.to_value()),
            ("tasks", self.tasks.to_value()),
            ("num_sockets", self.num_sockets.to_value()),
            ("makespan_ns", self.makespan_ns.to_value()),
        ];
        writer.write_all(b"{").map_err(io)?;
        for (key, value) in &header {
            // The comma is correct unconditionally: "events" always follows.
            write!(writer, "\n  \"{key}\": {},", scalar(value)).map_err(io)?;
        }
        writer.write_all(b"\n  \"events\": ").map_err(io)?;
        if self.events.is_empty() {
            writer.write_all(b"[]").map_err(io)?;
        } else {
            writer.write_all(b"[").map_err(io)?;
            for (i, event) in self.events.iter().enumerate() {
                if i > 0 {
                    writer.write_all(b",").map_err(io)?;
                }
                // One event is a small flat object: render it at top level
                // and re-indent onto the nesting depth it lives at. Event
                // strings are escaped tags, so no line of the rendering can
                // contain a raw newline.
                let rendered =
                    serde_json::to_string_pretty(event).expect("event serialization is total");
                for line in rendered.lines() {
                    writer.write_all(b"\n    ").map_err(io)?;
                    writer.write_all(line.as_bytes()).map_err(io)?;
                }
            }
            writer.write_all(b"\n  ]").map_err(io)?;
        }
        writer.write_all(b"\n}").map_err(io)?;
        Ok(())
    }

    /// Parses a trace previously serialized by [`Trace::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Trace, String> {
        let value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let events = value
            .get("events")
            .and_then(Value::as_array)
            .ok_or("missing array field \"events\"")?
            .iter()
            .map(parse_event)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace {
            workload: get_str(&value, "workload")?,
            policy: get_str(&value, "policy")?,
            backend: get_str(&value, "backend")?,
            scale: get_str(&value, "scale")?,
            repetition: get_u64(&value, "repetition")? as usize,
            tasks: get_u64(&value, "tasks")? as usize,
            num_sockets: get_u64(&value, "num_sockets")? as usize,
            makespan_ns: get_f64(&value, "makespan_ns")?,
            events,
        })
    }
}

impl Serialize for Trace {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("workload".to_string(), self.workload.to_value()),
            ("policy".to_string(), self.policy.to_value()),
            ("backend".to_string(), self.backend.to_value()),
            ("scale".to_string(), self.scale.to_value()),
            ("repetition".to_string(), self.repetition.to_value()),
            ("tasks".to_string(), self.tasks.to_value()),
            ("num_sockets".to_string(), self.num_sockets.to_value()),
            ("makespan_ns".to_string(), self.makespan_ns.to_value()),
            ("events".to_string(), self.events.to_value()),
        ])
    }
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let mut entries = vec![("type".to_string(), self.tag().to_value())];
        match self {
            TraceEvent::Assign { task, socket, time } => {
                entries.push(("task".to_string(), task.index().to_value()));
                entries.push(("socket".to_string(), socket.index().to_value()));
                entries.push(("time".to_string(), time.to_value()));
            }
            TraceEvent::Start {
                task,
                socket,
                core,
                time,
                stolen,
            } => {
                entries.push(("task".to_string(), task.index().to_value()));
                entries.push(("socket".to_string(), socket.index().to_value()));
                entries.push(("core".to_string(), core.index().to_value()));
                entries.push(("time".to_string(), time.to_value()));
                entries.push(("stolen".to_string(), stolen.to_value()));
            }
            TraceEvent::Finish {
                task,
                socket,
                core,
                time,
            } => {
                entries.push(("task".to_string(), task.index().to_value()));
                entries.push(("socket".to_string(), socket.index().to_value()));
                entries.push(("core".to_string(), core.index().to_value()));
                entries.push(("time".to_string(), time.to_value()));
            }
            TraceEvent::DeferredAlloc {
                task,
                node,
                bytes,
                time,
            } => {
                entries.push(("task".to_string(), task.index().to_value()));
                entries.push(("node".to_string(), node.index().to_value()));
                entries.push(("bytes".to_string(), bytes.to_value()));
                entries.push(("time".to_string(), time.to_value()));
            }
            TraceEvent::Traffic {
                task,
                region,
                from,
                to,
                distance,
                bytes,
                time,
            } => {
                entries.push(("task".to_string(), task.index().to_value()));
                entries.push(("region".to_string(), region.to_value()));
                entries.push(("from".to_string(), from.index().to_value()));
                entries.push(("to".to_string(), to.index().to_value()));
                entries.push(("distance".to_string(), distance.to_value()));
                entries.push(("bytes".to_string(), bytes.to_value()));
                entries.push(("time".to_string(), time.to_value()));
            }
        }
        Value::Object(entries)
    }
}

fn get_str(value: &Value, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn get_f64(value: &Value, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn get_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

/// Decodes one serialized [`TraceEvent`] (the `{"type": "assign", ...}`
/// object shape its `Serialize` impl produces). Public so other transports —
/// the multi-process executor's IPC — can ship event streams in the same
/// wire form traces are persisted in.
pub fn parse_event(value: &Value) -> Result<TraceEvent, String> {
    let tag = get_str(value, "type")?;
    let task = TaskId(get_u64(value, "task")? as usize);
    let time = get_f64(value, "time")?;
    match tag.as_str() {
        "assign" => Ok(TraceEvent::Assign {
            task,
            socket: SocketId(get_u64(value, "socket")? as usize),
            time,
        }),
        "start" => Ok(TraceEvent::Start {
            task,
            socket: SocketId(get_u64(value, "socket")? as usize),
            core: CoreId(get_u64(value, "core")? as usize),
            time,
            stolen: value
                .get("stolen")
                .and_then(Value::as_bool)
                .ok_or("missing boolean field \"stolen\"")?,
        }),
        "finish" => Ok(TraceEvent::Finish {
            task,
            socket: SocketId(get_u64(value, "socket")? as usize),
            core: CoreId(get_u64(value, "core")? as usize),
            time,
        }),
        "deferred_alloc" => Ok(TraceEvent::DeferredAlloc {
            task,
            node: NodeId(get_u64(value, "node")? as usize),
            bytes: get_u64(value, "bytes")?,
            time,
        }),
        "traffic" => Ok(TraceEvent::Traffic {
            task,
            region: get_u64(value, "region")? as usize,
            from: NodeId(get_u64(value, "from")? as usize),
            to: NodeId(get_u64(value, "to")? as usize),
            distance: get_u64(value, "distance")? as u32,
            bytes: get_u64(value, "bytes")?,
            time,
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

/// Thread-safe accumulator for the traces of a sweep: the sweep driver
/// records one [`Trace`] per executed cell, and harnesses drain it after the
/// run (to write trace files or feed the comparison analytics).
#[derive(Debug, Default)]
pub struct TraceCollector {
    traces: Mutex<Vec<Trace>>,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Records one cell's trace.
    pub fn record(&self, trace: Trace) {
        self.traces.lock().push(trace);
    }

    /// Number of traces collected.
    pub fn len(&self) -> usize {
        self.traces.lock().len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.traces.lock().is_empty()
    }

    /// Removes and returns every collected trace.
    pub fn take(&self) -> Vec<Trace> {
        std::mem::take(&mut *self.traces.lock())
    }

    /// A clone of the lowest-repetition trace matching `(workload, policy)`.
    /// Cells of a sharded sweep are recorded in completion order, so "first
    /// recorded" would be nondeterministic; keying on the repetition index
    /// keeps multi-rep comparisons anchored on matching repetitions.
    pub fn find(&self, workload: &str, policy: &str) -> Option<Trace> {
        self.traces
            .lock()
            .iter()
            .filter(|t| t.workload == workload && t.policy == policy)
            .min_by_key(|t| t.repetition)
            .cloned()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn toy_trace() -> Trace {
        // Two tasks on a 2-socket machine: task 0 local on S0, task 1
        // assigned to S0 but stolen by S1, reading task 0's region remotely.
        Trace {
            workload: "toy".to_string(),
            policy: "LAS".to_string(),
            backend: "simulator".to_string(),
            scale: "custom".to_string(),
            repetition: 0,
            tasks: 2,
            num_sockets: 2,
            makespan_ns: 30.0,
            events: vec![
                TraceEvent::Assign {
                    task: TaskId(0),
                    socket: SocketId(0),
                    time: 0.0,
                },
                TraceEvent::Start {
                    task: TaskId(0),
                    socket: SocketId(0),
                    core: CoreId(0),
                    time: 0.0,
                    stolen: false,
                },
                TraceEvent::DeferredAlloc {
                    task: TaskId(0),
                    node: NodeId(0),
                    bytes: 256,
                    time: 0.0,
                },
                TraceEvent::Traffic {
                    task: TaskId(0),
                    region: 0,
                    from: NodeId(0),
                    to: NodeId(0),
                    distance: 10,
                    bytes: 256,
                    time: 0.0,
                },
                TraceEvent::Finish {
                    task: TaskId(0),
                    socket: SocketId(0),
                    core: CoreId(0),
                    time: 10.0,
                },
                TraceEvent::Assign {
                    task: TaskId(1),
                    socket: SocketId(0),
                    time: 10.0,
                },
                TraceEvent::Start {
                    task: TaskId(1),
                    socket: SocketId(1),
                    core: CoreId(1),
                    time: 10.0,
                    stolen: true,
                },
                TraceEvent::Traffic {
                    task: TaskId(1),
                    region: 0,
                    from: NodeId(0),
                    to: NodeId(1),
                    distance: 21,
                    bytes: 256,
                    time: 10.0,
                },
                TraceEvent::Finish {
                    task: TaskId(1),
                    socket: SocketId(1),
                    core: CoreId(1),
                    time: 30.0,
                },
            ],
        }
    }

    #[test]
    fn intervals_capture_placement_and_steals() {
        let trace = toy_trace();
        let intervals = trace.task_intervals();
        let t0 = intervals[0].unwrap();
        assert_eq!(t0.socket, SocketId(0));
        assert_eq!(t0.assigned, SocketId(0));
        assert!(!t0.stolen);
        assert_eq!(t0.duration(), 10.0);
        let t1 = intervals[1].unwrap();
        assert_eq!(t1.socket, SocketId(1));
        assert_eq!(t1.assigned, SocketId(0));
        assert!(t1.stolen);
        assert_eq!(t1.duration(), 20.0);
    }

    #[test]
    fn validation_accepts_complete_traces_and_rejects_broken_ones() {
        let trace = toy_trace();
        assert!(trace.validate().is_ok());

        let mut missing = trace.clone();
        missing.events.pop(); // drop task 1's finish
        assert!(missing.validate().unwrap_err().contains("task 1"));

        let mut out_of_range = trace.clone();
        out_of_range.tasks = 1;
        assert!(out_of_range
            .validate()
            .unwrap_err()
            .contains("out-of-range"));

        // Traffic/deferred events are bounds-checked too: a complete
        // assign/start/finish set must not mask a rogue analytics event.
        let mut rogue_traffic = trace.clone();
        rogue_traffic.events.push(TraceEvent::Traffic {
            task: TaskId(9),
            region: 0,
            from: NodeId(0),
            to: NodeId(0),
            distance: 10,
            bytes: 1,
            time: 0.0,
        });
        let err = rogue_traffic.validate().unwrap_err();
        assert!(
            err.contains("traffic") && err.contains("out-of-range"),
            "{err}"
        );

        let mut late = trace;
        late.makespan_ns = 5.0;
        assert!(late.validate().is_err());
    }

    #[test]
    fn json_round_trips_every_event_kind() {
        let trace = toy_trace();
        let text = trace.to_json_string();
        let reparsed = Trace::from_json_str(&text).unwrap();
        assert_eq!(reparsed, trace);
        // Streaming writer produces the same bytes.
        let mut buffer = Vec::new();
        trace.to_json_writer(&mut buffer).unwrap();
        assert_eq!(String::from_utf8(buffer).unwrap(), text);
    }

    #[test]
    fn streaming_writer_matches_string_in_the_edge_cases() {
        // Empty event list: the one shape the streamed array can't derive
        // from the loop.
        let mut empty = toy_trace();
        empty.events.clear();
        let mut buffer = Vec::new();
        empty.to_json_writer(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text, empty.to_json_string());
        assert_eq!(Trace::from_json_str(&text).unwrap(), empty);
        // Metadata needing JSON escapes streams identically too.
        let mut quoted = toy_trace();
        quoted.workload = "odd \"name\"\nwith\tescapes \\".to_string();
        let mut buffer = Vec::new();
        quoted.to_json_writer(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text, quoted.to_json_string());
        assert_eq!(Trace::from_json_str(&text).unwrap(), quoted);
    }

    #[test]
    fn streaming_writer_surfaces_io_errors() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = toy_trace().to_json_writer(&mut Broken).unwrap_err();
        assert!(err.contains("disk full"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected_with_context() {
        assert!(Trace::from_json_str("not json").is_err());
        assert!(Trace::from_json_str("{}").unwrap_err().contains("events"));
        let bad_event = r#"{"workload":"w","policy":"p","backend":"b","scale":"s",
            "repetition":0,"tasks":1,"num_sockets":1,"makespan_ns":1,
            "events":[{"type":"warp","task":0,"time":0}]}"#;
        assert!(Trace::from_json_str(bad_event)
            .unwrap_err()
            .contains("unknown event type"));
    }

    #[test]
    fn collector_records_and_finds() {
        let collector = TraceCollector::new();
        assert!(collector.is_empty());
        collector.record(toy_trace());
        assert_eq!(collector.len(), 1);
        assert!(collector.find("toy", "LAS").is_some());
        assert!(collector.find("toy", "DFIFO").is_none());
        assert_eq!(collector.take().len(), 1);
        assert!(collector.is_empty());
    }
}
