//! Two-policy trace comparison: given traces of the *same workload* under
//! two policies, rank the tasks and data flows where one policy loses time
//! to the other.
//!
//! This is the tool the Figure-1 per-app divergences call for: when RGP+LAS
//! comes out slower than LAS on an application, [`Trace::compare`] names the
//! tasks whose durations grew, the regions whose accesses went remote, and
//! how the two critical paths differ — turning "geomean 0.955" into a list
//! of concrete scheduling decisions to investigate.

use numadag_tdg::{TaskGraph, TaskId};

use crate::analytics::CriticalPath;
use crate::event::TraceEvent;
use crate::trace::Trace;

/// Per-task difference between the two traced executions.
#[derive(Clone, Debug)]
pub struct TaskDelta {
    /// The task.
    pub task: TaskId,
    /// The task's kind label (from the task descriptor).
    pub kind: String,
    /// Socket the task ran on under `self` / `other`.
    pub socket_self: usize,
    /// Socket under the other policy.
    pub socket_other: usize,
    /// Execution duration under `self` (ns).
    pub duration_self: f64,
    /// Execution duration under `other` (ns).
    pub duration_other: f64,
    /// Remote bytes the task pulled under `self`.
    pub remote_bytes_self: u64,
    /// Remote bytes under `other`.
    pub remote_bytes_other: u64,
}

impl TaskDelta {
    /// How much longer the task ran under `self` than under `other` (ns);
    /// positive means `self` lost time here.
    pub fn delta_ns(&self) -> f64 {
        self.duration_self - self.duration_other
    }
}

/// Per-region (data-flow) difference between the two executions: region
/// accesses are the unit the runtime moves bytes in, so a region whose
/// distance-weighted traffic grew is an edge of the TDG that went remote.
#[derive(Clone, Debug)]
pub struct FlowDelta {
    /// The region index.
    pub region: usize,
    /// Total bytes moved for this region under `self` / `other`.
    pub bytes_self: u64,
    /// Bytes under the other policy.
    pub bytes_other: u64,
    /// Distance-weighted bytes (bytes × SLIT distance) under `self`.
    pub weighted_self: u64,
    /// Distance-weighted bytes under `other`.
    pub weighted_other: u64,
}

impl FlowDelta {
    /// Growth of the distance-weighted traffic under `self` relative to
    /// `other` (positive = `self` moved the region's bytes farther).
    pub fn weighted_delta(&self) -> i64 {
        self.weighted_self as i64 - self.weighted_other as i64
    }
}

/// The ranked comparison of two traces of the same workload.
#[derive(Clone, Debug)]
pub struct TraceComparison {
    /// Policy label of the trace `compare` was called on.
    pub policy_self: String,
    /// Policy label of the other trace.
    pub policy_other: String,
    /// Workload both traces ran.
    pub workload: String,
    /// Makespan under `self` (ns).
    pub makespan_self: f64,
    /// Makespan under `other` (ns).
    pub makespan_other: f64,
    /// Every task's delta, ranked by time lost under `self` (descending).
    pub task_deltas: Vec<TaskDelta>,
    /// Every region's flow delta, ranked by distance-weighted growth under
    /// `self` (descending).
    pub flow_deltas: Vec<FlowDelta>,
    /// Critical path of `self`'s schedule.
    pub critical_path_self: CriticalPath,
    /// Critical path of `other`'s schedule.
    pub critical_path_other: CriticalPath,
    /// Tasks placed on different sockets by the two policies.
    pub tasks_moved: usize,
}

impl TraceComparison {
    /// Makespan difference `self - other` (ns); positive means `self` is
    /// slower overall.
    pub fn makespan_delta_ns(&self) -> f64 {
        self.makespan_self - self.makespan_other
    }

    /// The `n` tasks where `self` lost the most time.
    pub fn top_task_losses(&self, n: usize) -> &[TaskDelta] {
        &self.task_deltas[..n.min(self.task_deltas.len())]
    }

    /// The `n` regions whose traffic went farthest under `self`.
    pub fn top_flow_losses(&self, n: usize) -> &[FlowDelta] {
        &self.flow_deltas[..n.min(self.flow_deltas.len())]
    }
}

impl std::fmt::Display for TraceComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} — {} vs {}: makespan {:.0} vs {:.0} ns ({:+.2}%), {} of {} tasks placed differently",
            self.workload,
            self.policy_self,
            self.policy_other,
            self.makespan_self,
            self.makespan_other,
            100.0 * self.makespan_delta_ns() / self.makespan_other.max(1.0),
            self.tasks_moved,
            self.task_deltas.len(),
        )?;
        writeln!(
            f,
            "  critical path: {:.0} ns ({:.0} dep / {:.0} core-busy) vs {:.0} ns ({:.0} dep / {:.0} core-busy)",
            self.critical_path_self.time_ns,
            self.critical_path_self.dependency_time_ns,
            self.critical_path_self.core_busy_time_ns,
            self.critical_path_other.time_ns,
            self.critical_path_other.dependency_time_ns,
            self.critical_path_other.core_busy_time_ns,
        )?;
        writeln!(f, "  tasks where {} loses the most time:", self.policy_self)?;
        for d in self.top_task_losses(8) {
            writeln!(
                f,
                "    task {:>6} {:<18} {:+10.0} ns  ({:.0} vs {:.0}; socket {} vs {}; remote {} vs {} B)",
                d.task.index(),
                d.kind,
                d.delta_ns(),
                d.duration_self,
                d.duration_other,
                d.socket_self,
                d.socket_other,
                d.remote_bytes_self,
                d.remote_bytes_other,
            )?;
        }
        writeln!(f, "  regions whose traffic went farthest:")?;
        for d in self.top_flow_losses(8) {
            writeln!(
                f,
                "    region {:>6} weighted {:+12} (bytes {} vs {})",
                d.region,
                d.weighted_delta(),
                d.bytes_self,
                d.bytes_other,
            )?;
        }
        Ok(())
    }
}

impl Trace {
    /// Compares this trace against `other` — a trace of the *same workload*
    /// (same task graph, same task count) under a different policy — and
    /// ranks where `self` loses time.
    ///
    /// # Errors
    /// Returns an error if the traces are not comparable (different
    /// workloads or task counts).
    pub fn compare(&self, other: &Trace, graph: &TaskGraph) -> Result<TraceComparison, String> {
        if self.workload != other.workload {
            return Err(format!(
                "cannot compare traces of different workloads ({:?} vs {:?})",
                self.workload, other.workload
            ));
        }
        if self.tasks != other.tasks || graph.num_tasks() != self.tasks {
            return Err(format!(
                "task counts disagree (self {}, other {}, graph {})",
                self.tasks,
                other.tasks,
                graph.num_tasks()
            ));
        }

        let intervals_self = self.task_intervals();
        let intervals_other = other.task_intervals();
        let remote_self = per_task_remote_bytes(self);
        let remote_other = per_task_remote_bytes(other);

        let mut task_deltas = Vec::with_capacity(self.tasks);
        let mut tasks_moved = 0usize;
        for t in 0..self.tasks {
            let (Some(a), Some(b)) = (intervals_self[t], intervals_other[t]) else {
                continue;
            };
            if a.socket != b.socket {
                tasks_moved += 1;
            }
            task_deltas.push(TaskDelta {
                task: TaskId(t),
                kind: graph.task(TaskId(t)).kind.clone(),
                socket_self: a.socket.index(),
                socket_other: b.socket.index(),
                duration_self: a.duration(),
                duration_other: b.duration(),
                remote_bytes_self: remote_self[t],
                remote_bytes_other: remote_other[t],
            });
        }
        task_deltas.sort_by(|a, b| b.delta_ns().total_cmp(&a.delta_ns()));

        let flows_self = per_region_flows(self);
        let flows_other = per_region_flows(other);
        let regions = flows_self.len().max(flows_other.len());
        let mut flow_deltas: Vec<FlowDelta> = (0..regions)
            .map(|r| {
                let a = flows_self.get(r).copied().unwrap_or((0, 0));
                let b = flows_other.get(r).copied().unwrap_or((0, 0));
                FlowDelta {
                    region: r,
                    bytes_self: a.0,
                    bytes_other: b.0,
                    weighted_self: a.1,
                    weighted_other: b.1,
                }
            })
            .filter(|d| d.bytes_self != 0 || d.bytes_other != 0)
            .collect();
        flow_deltas.sort_by_key(|d| std::cmp::Reverse(d.weighted_delta()));

        Ok(TraceComparison {
            policy_self: self.policy.clone(),
            policy_other: other.policy.clone(),
            workload: self.workload.clone(),
            makespan_self: self.makespan_ns,
            makespan_other: other.makespan_ns,
            task_deltas,
            flow_deltas,
            critical_path_self: self.critical_path_from(&intervals_self, graph),
            critical_path_other: other.critical_path_from(&intervals_other, graph),
            tasks_moved,
        })
    }
}

/// Remote bytes each task pulled (traffic events with `from != to`).
fn per_task_remote_bytes(trace: &Trace) -> Vec<u64> {
    let mut remote = vec![0u64; trace.tasks];
    for event in &trace.events {
        if let TraceEvent::Traffic {
            task,
            from,
            to,
            bytes,
            ..
        } = event
        {
            if from != to {
                remote[task.index()] += bytes;
            }
        }
    }
    remote
}

/// Per-region `(total bytes, distance-weighted bytes)` moved in a trace.
fn per_region_flows(trace: &Trace) -> Vec<(u64, u64)> {
    let mut flows: Vec<(u64, u64)> = Vec::new();
    for event in &trace.events {
        if let TraceEvent::Traffic {
            region,
            distance,
            bytes,
            ..
        } = event
        {
            if *region >= flows.len() {
                flows.resize(region + 1, (0, 0));
            }
            flows[*region].0 += bytes;
            flows[*region].1 += bytes * u64::from(*distance);
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_numa::{CoreId, NodeId, RegionId, SocketId};
    use numadag_tdg::{DataAccess, TaskDescriptor};

    /// Two tasks, 0 → 1; variant A runs both on socket 0 (all local),
    /// variant B runs task 1 remotely (slower).
    fn traces() -> (Trace, Trace, TaskGraph) {
        let mut graph = TaskGraph::new();
        graph.push_task(
            TaskDescriptor {
                id: TaskId(0),
                kind: "produce".into(),
                work_units: 10.0,
                accesses: vec![DataAccess::write(RegionId(0), 64)],
            },
            &[],
        );
        graph.push_task(
            TaskDescriptor {
                id: TaskId(1),
                kind: "consume".into(),
                work_units: 10.0,
                accesses: vec![DataAccess::read(RegionId(0), 64)],
            },
            &[(TaskId(0), 64)],
        );

        let base = |policy: &str, remote: bool| {
            let socket1 = if remote { SocketId(1) } else { SocketId(0) };
            let core1 = if remote { CoreId(1) } else { CoreId(0) };
            let end1 = if remote { 40.0 } else { 20.0 };
            Trace {
                workload: "pair".to_string(),
                policy: policy.to_string(),
                backend: "simulator".to_string(),
                scale: "custom".to_string(),
                repetition: 0,
                tasks: 2,
                num_sockets: 2,
                makespan_ns: end1,
                events: vec![
                    TraceEvent::Assign {
                        task: TaskId(0),
                        socket: SocketId(0),
                        time: 0.0,
                    },
                    TraceEvent::Start {
                        task: TaskId(0),
                        socket: SocketId(0),
                        core: CoreId(0),
                        time: 0.0,
                        stolen: false,
                    },
                    TraceEvent::Traffic {
                        task: TaskId(0),
                        region: 0,
                        from: NodeId(0),
                        to: NodeId(0),
                        distance: 10,
                        bytes: 64,
                        time: 0.0,
                    },
                    TraceEvent::Finish {
                        task: TaskId(0),
                        socket: SocketId(0),
                        core: CoreId(0),
                        time: 10.0,
                    },
                    TraceEvent::Assign {
                        task: TaskId(1),
                        socket: socket1,
                        time: 10.0,
                    },
                    TraceEvent::Start {
                        task: TaskId(1),
                        socket: socket1,
                        core: core1,
                        time: 10.0,
                        stolen: false,
                    },
                    TraceEvent::Traffic {
                        task: TaskId(1),
                        region: 0,
                        from: NodeId(0),
                        to: socket1.node(),
                        distance: if remote { 21 } else { 10 },
                        bytes: 64,
                        time: 10.0,
                    },
                    TraceEvent::Finish {
                        task: TaskId(1),
                        socket: socket1,
                        core: core1,
                        time: end1,
                    },
                ],
            }
        };
        (base("REMOTE", true), base("LOCAL", false), graph)
    }

    #[test]
    fn comparison_ranks_the_slow_remote_task_first() {
        let (remote, local, graph) = traces();
        let cmp = remote.compare(&local, &graph).unwrap();
        assert_eq!(cmp.policy_self, "REMOTE");
        assert!((cmp.makespan_delta_ns() - 20.0).abs() < 1e-9);
        assert_eq!(cmp.tasks_moved, 1);

        let worst = &cmp.task_deltas[0];
        assert_eq!(worst.task, TaskId(1));
        assert_eq!(worst.kind, "consume");
        assert!((worst.delta_ns() - 20.0).abs() < 1e-9);
        assert_eq!(worst.remote_bytes_self, 64);
        assert_eq!(worst.remote_bytes_other, 0);

        let flow = &cmp.flow_deltas[0];
        assert_eq!(flow.region, 0);
        // Weighted: self = 64*10 + 64*21, other = 64*10 + 64*10.
        assert_eq!(flow.weighted_delta(), 64 * (21 - 10));

        // Both critical paths are the full dependence chain.
        assert!((cmp.critical_path_self.time_ns - 40.0).abs() < 1e-9);
        assert!((cmp.critical_path_other.time_ns - 20.0).abs() < 1e-9);

        let report = cmp.to_string();
        assert!(report.contains("REMOTE"), "{report}");
        assert!(report.contains("consume"), "{report}");
        assert!(report.contains("region"), "{report}");
    }

    #[test]
    fn incomparable_traces_are_rejected() {
        let (remote, local, graph) = traces();
        let mut renamed = local.clone();
        renamed.workload = "different".to_string();
        assert!(remote.compare(&renamed, &graph).is_err());

        let mut truncated = local;
        truncated.tasks = 1;
        assert!(remote.compare(&truncated, &graph).is_err());
    }
}
