//! A minimal, API-compatible subset of `criterion`, vendored because the
//! build environment has no access to crates.io.
//!
//! It supports the surface the `numadag-bench` benches use — benchmark
//! groups, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `iter` — and produces simple wall-clock statistics (median
//! over a fixed number of samples after a short warm-up) on stdout instead
//! of criterion's HTML reports. Statistical rigor is out of scope; stable,
//! parseable output for baseline tracking is the goal.
//!
//! Two extensions beyond stdout reporting make regression gating possible:
//! `--sample-size N` on the command line overrides every group's sample
//! count (criterion parity), and setting `NUMADAG_CRITERION_JSON=PATH`
//! makes `criterion_main!` write all collected medians to `PATH` as
//! `{"benches": [{"id", "median_ns", "throughput_per_sec"}]}` — the format
//! the `BENCH_hotpath.json` baseline and `ablation hotpath-diff` consume.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer identity function, re-exported for benches.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units processed per iteration, for derived throughput rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements (tasks, vertices, …).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

impl Throughput {
    fn units(self) -> u64 {
        match self {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }
    }

    fn unit_label(self) -> &'static str {
        match self {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        }
    }
}

/// One collected benchmark result: the full id, its median per-iteration
/// time, and the derived rate when the group declared a [`Throughput`].
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/function[/parameter]`).
    pub id: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Units per second (from [`Throughput`]), when declared.
    pub throughput_per_sec: Option<f64>,
}

/// A benchmark identifier: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `"{name}/{parameter}"`, as criterion renders it.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the iterations of a single benchmark.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call, in nanoseconds.
    pub last_median_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median per-call time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also forces lazy setup).
        std_black_box(routine());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_median_ns = times[times.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark (a `--sample-size`
    /// command-line override wins, as in criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs; subsequent benchmarks
    /// in the group report a derived rate next to the median.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self
                .criterion
                .sample_size_override
                .unwrap_or(self.sample_size),
            last_median_ns: 0.0,
        };
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        f(&mut bencher);
        let rate = self
            .throughput
            .map(|t| t.units() as f64 / (bencher.last_median_ns / 1e9));
        match (rate, self.throughput) {
            (Some(r), Some(t)) => println!(
                "bench: {:<60} median {:>12}   {:.3e} {}",
                full,
                format_ns(bencher.last_median_ns),
                r,
                t.unit_label()
            ),
            _ => println!(
                "bench: {:<60} median {:>12}",
                full,
                format_ns(bencher.last_median_ns)
            ),
        }
        self.criterion.results.push(BenchResult {
            id: full,
            median_ns: bencher.last_median_ns,
            throughput_per_sec: rate,
        });
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) {
        self.run_one(id.to_string(), f);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) {
        self.run_one(id.to_string(), |b| f(b, input));
    }

    /// Ends the group (criterion parity; all work already happened).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    sample_size_override: Option<usize>,
    /// Every benchmark result collected so far, in run order.
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Applies command-line arguments (a name filter; flags like
    /// `--bench`/`--noplot` that cargo or criterion CLIs pass are ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Flags cargo-bench/criterion pass that take no value.
                "--bench" | "--noplot" | "--quiet" | "--verbose" => {}
                // Flags with a value we do not use.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time" => {
                    args.next();
                }
                "--sample-size" => {
                    self.sample_size_override = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .map(|n: usize| n.max(1));
                }
                s if s.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Starts a benchmark group named `name`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size_override.unwrap_or(20),
            last_median_ns: 0.0,
        };
        let full = id.to_string();
        if self.matches(&full) {
            let mut f = f;
            f(&mut bencher);
            println!(
                "bench: {:<60} median {:>12}",
                full,
                format_ns(bencher.last_median_ns)
            );
            self.results.push(BenchResult {
                id: full,
                median_ns: bencher.last_median_ns,
                throughput_per_sec: None,
            });
        }
        self
    }
}

/// Serializes collected results as the `BENCH_hotpath.json` baseline format.
/// Hand-rolled so the stub stays dependency-free; ids contain no characters
/// needing JSON escapes beyond `"` and `\` (escaped anyway for safety).
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"benches\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let id = r.id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"throughput_per_sec\": {}}}",
            id,
            r.median_ns,
            match r.throughput_per_sec {
                Some(t) => format!("{t:.1}"),
                None => "null".to_string(),
            }
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes `results` to the path named by the `NUMADAG_CRITERION_JSON`
/// environment variable, if set. Called by `criterion_main!` after all
/// groups ran; a no-op when the variable is absent (plain `cargo bench`).
pub fn export_json_env(results: &[BenchResult]) {
    if let Some(path) = std::env::var_os("NUMADAG_CRITERION_JSON") {
        if let Err(e) = std::fs::write(&path, results_to_json(results)) {
            eprintln!("criterion: cannot write {}: {e}", path.to_string_lossy());
            std::process::exit(1);
        }
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() -> Vec<$crate::BenchResult> {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.results
        }
    };
}

/// Declares the `main` function running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut all: Vec<$crate::BenchResult> = Vec::new();
            $( all.extend($group()); )+
            $crate::export_json_env(&all);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/f");
        assert_eq!(c.results[1].id, "g/with_input/4");
    }

    #[test]
    fn throughput_yields_a_rate_and_json_round_trips() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("t", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(c.results.len(), 1);
        let r = &c.results[0];
        assert!(r.throughput_per_sec.is_some());
        let json = results_to_json(&c.results);
        assert!(json.contains("\"benches\""));
        assert!(json.contains("\"id\": \"g/t\""));
        assert!(json.contains("\"median_ns\""));
    }

    #[test]
    fn sample_size_override_wins_over_group_setting() {
        let mut c = Criterion {
            sample_size_override: Some(2),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        let mut calls = 0u32;
        let calls_ref = &mut calls;
        group.bench_function("f", move |b| {
            b.iter(|| {
                *calls_ref += 1;
            })
        });
        group.finish();
        // 1 warm-up + 2 timed samples.
        assert_eq!(calls, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("zzz".to_string()),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| 1));
        group.finish();
        assert!(c.results.is_empty());
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1500.0), "1.500 µs");
        assert_eq!(format_ns(2.5e6), "2.500 ms");
        assert_eq!(format_ns(3.0e9), "3.000 s");
    }
}
