//! A minimal, API-compatible subset of `criterion`, vendored because the
//! build environment has no access to crates.io.
//!
//! It supports the surface the `numadag-bench` benches use — benchmark
//! groups, `bench_function`, `bench_with_input`, `BenchmarkId`, `iter` —
//! and produces simple wall-clock statistics (median over a fixed number of
//! samples after a short warm-up) on stdout instead of criterion's HTML
//! reports. Statistical rigor is out of scope; stable, parseable output for
//! baseline tracking is the goal.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer identity function, re-exported for benches.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `"{name}/{parameter}"`, as criterion renders it.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the iterations of a single benchmark.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call, in nanoseconds.
    pub last_median_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median per-call time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also forces lazy setup).
        std_black_box(routine());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_median_ns = times[times.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_median_ns: 0.0,
        };
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        f(&mut bencher);
        println!(
            "bench: {:<60} median {:>12}",
            full,
            format_ns(bencher.last_median_ns)
        );
        self.criterion.results.push((full, bencher.last_median_ns));
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) {
        self.run_one(id.to_string(), f);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) {
        self.run_one(id.to_string(), |b| f(b, input));
    }

    /// Ends the group (criterion parity; all work already happened).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    /// `(full benchmark id, median ns)` for every benchmark run so far.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Applies command-line arguments (a name filter; flags like
    /// `--bench`/`--noplot` that cargo or criterion CLIs pass are ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Flags cargo-bench/criterion pass that take no value.
                "--bench" | "--noplot" | "--quiet" | "--verbose" => {}
                // Flags with a value we do not use.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    args.next();
                }
                s if s.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Starts a benchmark group named `name`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: 20,
            last_median_ns: 0.0,
        };
        let full = id.to_string();
        if self.matches(&full) {
            let mut f = f;
            f(&mut bencher);
            println!(
                "bench: {:<60} median {:>12}",
                full,
                format_ns(bencher.last_median_ns)
            );
            self.results.push((full, bencher.last_median_ns));
        }
        self
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].0, "g/f");
        assert_eq!(c.results[1].0, "g/with_input/4");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("zzz".to_string()),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| 1));
        group.finish();
        assert!(c.results.is_empty());
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1500.0), "1.500 µs");
        assert_eq!(format_ns(2.5e6), "2.500 ms");
        assert_eq!(format_ns(3.0e9), "3.000 s");
    }
}
