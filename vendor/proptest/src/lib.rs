//! A minimal, API-compatible subset of `proptest`, vendored because the
//! build environment has no access to crates.io.
//!
//! Supports the surface `tests/properties.rs` uses: the `proptest!` macro
//! with `#![proptest_config(...)]` and `arg in strategy` parameters, integer
//! range strategies, tuple strategies, `prop::collection::vec`, and the
//! `prop_assert*` macros. Unlike real proptest there is no shrinking: inputs
//! are drawn from a deterministic per-case RNG, so a failing case is
//! reproducible from its case index (printed in the panic message by the
//! standard assert machinery).

/// Runner configuration: how many random cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG handed to strategies (SplitMix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// One fixed stream per `(property, case)` pair: deterministic runs.
    pub fn deterministic(case: u64, property_name: &str) -> Self {
        // FNV-1a over the property name so different properties do not see
        // the same input stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in property_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                *self.start() + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// A strategy producing a constant value (`Just`, as in proptest).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` namespace used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn` runs `config.cases` times with inputs
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::deterministic(case as u64, stringify!($name));
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),* ) $body
            )*
        }
    };
}

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges produce in-bounds values.
        #[test]
        fn ranges_in_bounds(x in 3usize..20, y in 0u64..1000, z in 0u8..3) {
            prop_assert!((3..20).contains(&x));
            prop_assert!(y < 1000);
            prop_assert!(z < 3);
        }

        /// Tuple and vec strategies compose.
        #[test]
        fn composed_strategies(
            v in prop::collection::vec((0usize..12, 0u8..3), 1..80),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 80);
            for (a, m) in &v {
                prop_assert!(a < &12);
                prop_assert!(m < &3);
            }
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic(3, "p");
        let mut b = TestRng::deterministic(3, "p");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic(3, "q");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
