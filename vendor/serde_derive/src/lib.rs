//! `#[derive(Serialize)]` for the vendored serde subset.
//!
//! Written against `proc_macro` directly (no `syn`/`quote` available
//! offline). Supports structs with named fields — the only shape the
//! workspace derives on. Attributes (including doc comments) and
//! visibility modifiers on fields are skipped; `#[serde(...)]` renaming is
//! not supported. Generic structs are rejected with a compile error rather
//! than silently producing broken impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by mapping each named field into an entry of
/// a `serde::Value::Object`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility before `struct`.
    let struct_pos = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break i,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err("the vendored #[derive(Serialize)] only supports structs \
                            with named fields"
                    .to_string());
            }
            Some(_) => i += 1,
            None => return Err("expected a struct definition".to_string()),
        }
    };

    let name = match tokens.get(struct_pos + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected a struct name".to_string()),
    };

    // Find the brace-delimited field block; anything between the name and
    // the braces (e.g. generics) is unsupported.
    let mut body = None;
    for t in &tokens[struct_pos + 2..] {
        match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err("the vendored #[derive(Serialize)] does not support \
                            generic structs"
                    .to_string());
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("the vendored #[derive(Serialize)] does not support \
                            tuple structs"
                    .to_string());
            }
            _ => {}
        }
    }
    let body = body.ok_or_else(|| "expected named struct fields".to_string())?;

    let fields = field_names(body)?;
    let entries: String = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect();

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("serde_derive generated invalid code: {e:?}"))
}

/// Extracts field names from the token stream inside the struct braces.
///
/// Grammar per field: `#[attr]* [pub [(..)]] name : type`, fields separated
/// by top-level commas. Commas inside angle brackets (`HashMap<K, V>`) are
/// not separators, so `<`/`>` depth is tracked; commas inside groups are
/// invisible at this level because groups are single tokens.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth: i32 = 0;
    // The candidate ident most recently seen before a `:` at depth 0.
    let mut last_ident: Option<String> = None;
    let mut expecting_name = true;

    for t in body {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && expecting_name => {
                    if let Some(name) = last_ident.take() {
                        fields.push(name);
                        expecting_name = false;
                    }
                }
                ',' if angle_depth == 0 => {
                    expecting_name = true;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    if fields.is_empty() {
        return Err("struct has no named fields to serialize".to_string());
    }
    Ok(fields)
}
