//! `#[derive(Serialize)]` for the vendored serde subset.
//!
//! Written against `proc_macro` directly (no `syn`/`quote` available
//! offline). Supports structs with named fields and enums in serde's
//! externally-tagged representation: unit variants serialize as
//! `Value::String("Variant")`, newtype variants as `{"Variant": value}`, and
//! struct variants as `{"Variant": {field: value, ...}}` — the encoding the
//! sweep service's request/response envelopes rely on. Attributes (including
//! doc comments) and visibility modifiers are skipped; `#[serde(...)]`
//! renaming is not supported. Generic types and multi-field tuple shapes are
//! rejected with a compile error rather than silently producing broken
//! impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by mapping each named field into an entry of
/// a `serde::Value::Object` (structs) or the externally-tagged equivalent
/// (enums).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility before the keyword.
    let (keyword, keyword_pos) = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break ("struct", i),
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break ("enum", i),
            Some(TokenTree::Ident(id)) if id.to_string() == "union" => {
                return Err("the vendored #[derive(Serialize)] does not support unions".to_string());
            }
            Some(_) => i += 1,
            None => return Err("expected a struct or enum definition".to_string()),
        }
    };

    let name = match tokens.get(keyword_pos + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err(format!("expected a {keyword} name")),
    };

    // Find the brace-delimited body; anything between the name and the
    // braces (e.g. generics) is unsupported.
    let mut body = None;
    for t in &tokens[keyword_pos + 2..] {
        match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err(format!(
                    "the vendored #[derive(Serialize)] does not support generic {keyword}s"
                ));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("the vendored #[derive(Serialize)] does not support \
                            tuple structs"
                    .to_string());
            }
            _ => {}
        }
    }
    let body = body.ok_or_else(|| format!("expected a braced {keyword} body"))?;

    let out = if keyword == "struct" {
        let fields = field_names(body)?;
        let entries: String = fields
            .iter()
            .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
            .collect();
        format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Object(vec![{entries}])\n\
                 }}\n\
             }}"
        )
    } else {
        let variants = enum_variants(body)?;
        let arms: String = variants.iter().map(|v| variant_arm(&name, v)).collect();
        format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}\n}}\n\
                 }}\n\
             }}"
        )
    };
    out.parse()
        .map_err(|e| format!("serde_derive generated invalid code: {e:?}"))
}

/// One enum variant and the shape of its payload.
enum VariantShape {
    /// `Variant` — serializes as `Value::String("Variant")`.
    Unit,
    /// `Variant(T)` — serializes as `{"Variant": value}`.
    Newtype,
    /// `Variant { a: A, b: B }` — serializes as `{"Variant": {"a": .., ..}}`.
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

/// The match arm serializing one variant in the externally-tagged encoding.
fn variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{enum_name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n")
        }
        VariantShape::Newtype => format!(
            "{enum_name}::{vname}(value) => ::serde::Value::Object(vec![\
                 ({vname:?}.to_string(), ::serde::Serialize::to_value(value))]),\n"
        ),
        VariantShape::Struct(fields) => {
            let bindings = fields.join(", ");
            let entries: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f})),"))
                .collect();
            format!(
                "{enum_name}::{vname} {{ {bindings} }} => ::serde::Value::Object(vec![\
                     ({vname:?}.to_string(), ::serde::Value::Object(vec![{entries}]))]),\n"
            )
        }
    }
}

/// Extracts the variants from the token stream inside the enum braces.
///
/// Grammar per variant: `#[attr]* Name [{ fields } | ( types )] [= expr]`,
/// separated by top-level commas. Attribute contents arrive as bracket
/// groups and are ignored; discriminant expressions are skipped.
fn enum_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut name: Option<String> = None;
    let mut shape = VariantShape::Unit;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if let Some(n) = name.take() {
                    variants.push(Variant {
                        name: n,
                        shape: std::mem::replace(&mut shape, VariantShape::Unit),
                    });
                }
            }
            // `#` introducing an attribute, `=` introducing a discriminant.
            TokenTree::Punct(_) => {}
            TokenTree::Ident(id) => {
                // The first ident of a variant is its name; later idents can
                // only appear inside a discriminant expression.
                if name.is_none() {
                    name = Some(id.to_string());
                }
            }
            TokenTree::Group(g) if name.is_some() => match g.delimiter() {
                // Bracket groups at this position belong to attributes that
                // syntactically cannot follow the name; ignore them.
                Delimiter::Bracket | Delimiter::None => {}
                Delimiter::Brace => shape = VariantShape::Struct(field_names(g.stream())?),
                Delimiter::Parenthesis => {
                    if tuple_arity(g.stream()) != 1 {
                        return Err(format!(
                            "the vendored #[derive(Serialize)] only supports tuple \
                             variants with exactly one field ({})",
                            name.as_deref().unwrap_or("?")
                        ));
                    }
                    shape = VariantShape::Newtype;
                }
            },
            // Attribute contents before the variant name, literals inside
            // discriminants.
            TokenTree::Group(_) | TokenTree::Literal(_) => {}
        }
    }
    if let Some(n) = name.take() {
        variants.push(Variant { name: n, shape });
    }
    if variants.is_empty() {
        return Err("enum has no variants to serialize".to_string());
    }
    Ok(variants)
}

/// Number of fields in a parenthesised tuple-variant payload: top-level
/// commas + 1, tolerating a trailing comma; commas inside angle brackets do
/// not separate fields.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut angle_depth: i32 = 0;
    let mut fields = 0usize;
    let mut saw_tokens_since_comma = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    saw_tokens_since_comma = true;
                }
                '>' => {
                    angle_depth -= 1;
                    saw_tokens_since_comma = true;
                }
                ',' if angle_depth == 0 => {
                    if saw_tokens_since_comma {
                        fields += 1;
                    }
                    saw_tokens_since_comma = false;
                }
                _ => saw_tokens_since_comma = true,
            },
            _ => saw_tokens_since_comma = true,
        }
    }
    if saw_tokens_since_comma {
        fields += 1;
    }
    fields
}

/// Extracts field names from the token stream inside the struct braces.
///
/// Grammar per field: `#[attr]* [pub [(..)]] name : type`, fields separated
/// by top-level commas. Commas inside angle brackets (`HashMap<K, V>`) are
/// not separators, so `<`/`>` depth is tracked; commas inside groups are
/// invisible at this level because groups are single tokens.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth: i32 = 0;
    // The candidate ident most recently seen before a `:` at depth 0.
    let mut last_ident: Option<String> = None;
    let mut expecting_name = true;

    for t in body {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && expecting_name => {
                    if let Some(name) = last_ident.take() {
                        fields.push(name);
                        expecting_name = false;
                    }
                }
                ',' if angle_depth == 0 => {
                    expecting_name = true;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    if fields.is_empty() {
        return Err("struct has no named fields to serialize".to_string());
    }
    Ok(fields)
}
