//! A minimal, API-compatible subset of `serde`, vendored because the build
//! environment has no access to crates.io.
//!
//! Real serde is a visitor-based framework; this subset collapses it to one
//! concrete data model: [`Serialize`] converts a value into a [`Value`]
//! tree, which `serde_json` renders. `#[derive(Serialize)]` works on structs
//! with named fields (see the vendored `serde_derive`).

// Lets the `::serde::...` paths the derive generates resolve even inside
// this crate's own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// The self-describing data model every serializable value maps into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value of object key `key`, if `self` is an object containing it
    /// (mirrors `serde_json::Value::get`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if `self` is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.trunc() == *n => Some(*n as u64),
            _ => None,
        }
    }

    /// The string slice, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if `self` is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if `self` is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_values() {
        assert_eq!(3usize.to_value(), Value::Number(3.0));
        assert_eq!("x".to_value(), Value::String("x".to_string()));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        assert_eq!(
            ("a".to_string(), 1.5f64).to_value(),
            Value::Array(vec![Value::String("a".to_string()), Value::Number(1.5)])
        );
    }

    #[test]
    fn derive_serialize_emits_object() {
        #[derive(Serialize)]
        struct Point {
            x: f64,
            label: String,
        }
        let v = Point {
            x: 1.0,
            label: "p".to_string(),
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("x".to_string(), Value::Number(1.0)),
                ("label".to_string(), Value::String("p".to_string())),
            ])
        );
    }

    #[test]
    fn derive_handles_pub_fields_attrs_and_nesting() {
        #[derive(Serialize)]
        struct Inner {
            /// Doc comments are attributes and must be skipped.
            pub value: usize,
        }
        #[derive(Serialize)]
        struct Outer {
            pub items: Vec<Inner>,
        }
        let v = Outer {
            items: vec![Inner { value: 7 }],
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![(
                "items".to_string(),
                Value::Array(vec![Value::Object(vec![(
                    "value".to_string(),
                    Value::Number(7.0)
                )])])
            )])
        );
    }

    #[test]
    fn derive_serializes_enums_externally_tagged() {
        #[derive(Serialize)]
        enum Message {
            /// Unit variants become bare strings.
            Ping,
            Jump(u32),
            Move {
                /// Doc comments on variant fields are skipped too.
                x: f64,
                label: String,
            },
        }

        assert_eq!(Message::Ping.to_value(), Value::String("Ping".to_string()));
        assert_eq!(
            Message::Jump(3).to_value(),
            Value::Object(vec![("Jump".to_string(), Value::Number(3.0))])
        );
        assert_eq!(
            Message::Move {
                x: 1.5,
                label: "a".to_string()
            }
            .to_value(),
            Value::Object(vec![(
                "Move".to_string(),
                Value::Object(vec![
                    ("x".to_string(), Value::Number(1.5)),
                    ("label".to_string(), Value::String("a".to_string())),
                ])
            )])
        );
    }

    #[test]
    fn derive_enum_variants_nest_and_carry_collections() {
        #[derive(Serialize)]
        struct Body {
            n: usize,
        }
        #[derive(Serialize)]
        enum Envelope {
            Wrapped(Body),
            Batch { items: Vec<u8> },
        }
        assert_eq!(
            Envelope::Wrapped(Body { n: 2 }).to_value(),
            Value::Object(vec![(
                "Wrapped".to_string(),
                Value::Object(vec![("n".to_string(), Value::Number(2.0))])
            )])
        );
        assert_eq!(
            Envelope::Batch { items: vec![1, 2] }.to_value(),
            Value::Object(vec![(
                "Batch".to_string(),
                Value::Object(vec![(
                    "items".to_string(),
                    Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
                )])
            )])
        );
    }
}
