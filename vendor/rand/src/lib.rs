//! A minimal, dependency-free, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of `rand` it actually uses: `StdRng` (a deterministic
//! xoshiro256++ generator), `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over integer ranges, and `seq::SliceRandom::shuffle`. Determinism for a
//! fixed seed is the property the partitioner and the scheduling policies
//! rely on; statistical quality beyond that is best-effort.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

mod range {
    /// Types that can describe a sampling range for [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range using the given bits.
        fn sample(&self, bits: u64) -> T;
        /// Panics if the range is empty.
        fn assert_nonempty(&self);
    }

    macro_rules! impl_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample(&self, bits: u64) -> $t {
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (bits as u128 % span) as $t
                }
                fn assert_nonempty(&self) {
                    assert!(self.start < self.end, "cannot sample empty range");
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample(&self, bits: u64) -> $t {
                    let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                    *self.start() + (bits as u128 % span) as $t
                }
                fn assert_nonempty(&self) {
                    assert!(self.start() <= self.end(), "cannot sample empty range");
                }
            }
        )*};
    }

    impl_sample_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_sample_range_signed {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample(&self, bits: u64) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (bits as u128 % span) as i128) as $t
                }
                fn assert_nonempty(&self) {
                    assert!(self.start < self.end, "cannot sample empty range");
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample(&self, bits: u64) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    (*self.start() as i128 + (bits as u128 % span) as i128) as $t
                }
                fn assert_nonempty(&self) {
                    assert!(self.start() <= self.end(), "cannot sample empty range");
                }
            }
        )*};
    }

    impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);
}

pub use range::SampleRange;

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.assert_nonempty();
        range.sample(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 exactly as the xoshiro reference code
    /// recommends.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..20);
            assert!((3..20).contains(&x));
            let y = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not shuffle to identity"
        );
    }

    use super::RngCore;
}
