//! A minimal, API-compatible subset of `parking_lot` layered over
//! `std::sync`, vendored because the build environment has no access to
//! crates.io. Provides the `parking_lot` calling conventions the runtime
//! crate uses: infallible `Mutex::lock`, and a `Condvar` whose wait methods
//! take `&mut MutexGuard` instead of consuming the guard.
//!
//! Poisoning is deliberately ignored (as in real `parking_lot`): a panic
//! while holding the lock does not poison it for other threads.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never fails:
    /// poisoning is ignored, matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed wait: reports whether the wait timed out.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified. The guard is atomically released while
    /// waiting and re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already waiting");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
