//! A minimal, API-compatible subset of `serde_json` over the vendored serde
//! data model, vendored because the build environment has no access to
//! crates.io. Provides the `json!` macro (object/array/expression forms),
//! `to_value`, `to_string`, `to_string_pretty`, the streaming
//! `to_writer`/`to_writer_pretty` and a `from_str` parser into [`Value`].

use serde::Serialize;
pub use serde::Value;

/// Serialization or parse error. Serialization into a string through the
/// vendored data model is infallible; the `to_writer` variants surface I/O
/// errors, and parsing ([`from_str`]) reports the byte offset and a short
/// description of the first syntax error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

fn escape_into<W: std::fmt::Write>(s: &str, out: &mut W) -> std::fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn write_number<W: std::fmt::Write>(n: f64, out: &mut W) -> std::fmt::Result {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 9.0e15 {
            write!(out, "{}", n as i64)
        } else {
            write!(out, "{n}")
        }
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.write_str("null")
    }
}

fn write_value<W: std::fmt::Write>(
    v: &Value,
    indent: Option<usize>,
    level: usize,
    out: &mut W,
) -> std::fmt::Result {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (level + 1)),
            " ".repeat(w * level),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                return out.write_str("[]");
            }
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                out.write_str(nl)?;
                out.write_str(&pad)?;
                write_value(item, indent, level + 1, out)?;
            }
            out.write_str(nl)?;
            out.write_str(&pad_close)?;
            out.write_char(']')
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                return out.write_str("{}");
            }
            out.write_char('{')?;
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                out.write_str(nl)?;
                out.write_str(&pad)?;
                escape_into(k, out)?;
                out.write_str(colon)?;
                write_value(val, indent, level + 1, out)?;
            }
            out.write_str(nl)?;
            out.write_str(&pad_close)?;
            out.write_char('}')
        }
    }
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out).expect("writing to a String cannot fail");
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out).expect("writing to a String cannot fail");
    Ok(out)
}

/// Adapts an [`std::io::Write`] to the `fmt::Write` the serializer streams
/// into, capturing the first I/O error (`fmt::Error` carries no payload).
struct IoAdapter<'a> {
    inner: &'a mut dyn std::io::Write,
    error: Option<std::io::Error>,
}

impl std::fmt::Write for IoAdapter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            self.error = Some(e);
            std::fmt::Error
        })
    }
}

fn write_to_io<T: Serialize>(
    writer: &mut dyn std::io::Write,
    value: &T,
    indent: Option<usize>,
) -> Result<(), Error> {
    let mut adapter = IoAdapter {
        inner: writer,
        error: None,
    };
    write_value(&value.to_value(), indent, 0, &mut adapter).map_err(|_| {
        let io = adapter
            .error
            .take()
            .expect("fmt::Error only arises from a captured io::Error");
        Error(format!("I/O error while writing JSON: {io}"))
    })
}

/// Streams `value` as compact JSON into `writer` without materializing the
/// document as one string (large exports — execution traces — stay cheap).
pub fn to_writer<T: Serialize>(writer: &mut dyn std::io::Write, value: &T) -> Result<(), Error> {
    write_to_io(writer, value, None)
}

/// Streams `value` as two-space-indented JSON into `writer`.
pub fn to_writer_pretty<T: Serialize>(
    writer: &mut dyn std::io::Write,
    value: &T,
) -> Result<(), Error> {
    write_to_io(writer, value, Some(2))
}

/// Parses JSON text into a [`Value`] tree. Numbers parse as `f64` (the data
/// model's only numeric type), matching how [`to_string`] wrote them, so a
/// serialize → parse round trip reproduces the original values exactly for
/// every finite number Rust's shortest-round-trip formatting emitted.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the JSON document"));
    }
    Ok(value)
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `literal` (e.g. `null`) or errors without advancing.
    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected {literal:?}")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            // Copy the contiguous run up to the next quote or escape in one
            // shot. The run is valid UTF-8 by construction: the input was a
            // &str and both run delimiters are ASCII, so the slice bounds
            // sit on character boundaries. (Copying scalar-by-scalar would
            // re-validate the whole tail per character — quadratic on the
            // long embedded report strings the sweep service exchanges.)
            let Some(run) = rest.iter().position(|&b| b == b'"' || b == b'\\') else {
                return Err(self.error("unterminated string"));
            };
            if run > 0 {
                let text = std::str::from_utf8(&rest[..run]).expect("input was a &str");
                out.push_str(text);
                self.pos += run;
            }
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => {
                    // An escape sequence.
                    let escape = self.bytes.get(self.pos + 1).copied();
                    self.pos += 2;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs (and lone surrogates) are not
                            // produced by the vendored writer; map them to
                            // the replacement character instead of erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.pos += 1;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.pos += 1;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected a string object key"));
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            if self.peek() != Some(b':') {
                return Err(self.error("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

/// Builds a [`Value`] from JSON-like syntax. Supports objects with literal
/// string keys, arrays, and arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = json!({
            "name": "bench",
            "ok": true,
            "count": 3usize,
            "ratio": 1.5f64,
            "items": vec![1u32, 2],
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"bench","ok":true,"count":3,"ratio":1.5,"items":[1,2]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"bench\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "k": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn numbers_format_like_json() {
        assert_eq!(to_string(&json!(2.0f64)).unwrap(), "2");
        assert_eq!(to_string(&json!(2.25f64)).unwrap(), "2.25");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn from_str_parses_every_value_kind() {
        let v = from_str(
            r#"{ "s": "a\"b\\c\ndA", "n": -1.25e2, "i": 42, "b": true,
                 "nul": null, "arr": [1, [], {}], "empty": "" }"#,
        )
        .unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-125.0));
        assert_eq!(v.get("i").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("nul"), Some(&Value::Null));
        let arr = v.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1], Value::Array(vec![]));
        assert_eq!(arr[2], Value::Object(vec![]));
        assert_eq!(v.get("empty").unwrap().as_str(), Some(""));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn serialize_parse_round_trips_exactly() {
        let original = json!({
            "name": "sweep",
            "seed": 15819134u64,
            "makespan": 43754.600000000006f64,
            "cells": vec![0.6349926636285097f64, 1.0373970991126455],
            "skipped": Vec::<String>::new(),
            "unicode": "héllo ∑",
        });
        for text in [
            to_string(&original).unwrap(),
            to_string_pretty(&original).unwrap(),
        ] {
            let reparsed = from_str(&text).unwrap();
            assert_eq!(reparsed, original, "round trip through {text}");
        }
    }

    #[test]
    fn writer_output_matches_string_output() {
        let v = json!({
            "name": "trace",
            "events": vec![1u32, 2, 3],
            "nested": json!({ "ok": true }),
        });
        let mut compact = Vec::new();
        to_writer(&mut compact, &v).unwrap();
        assert_eq!(String::from_utf8(compact).unwrap(), to_string(&v).unwrap());
        let mut pretty = Vec::new();
        to_writer_pretty(&mut pretty, &v).unwrap();
        assert_eq!(
            String::from_utf8(pretty).unwrap(),
            to_string_pretty(&v).unwrap()
        );
    }

    #[test]
    fn writer_surfaces_io_errors() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = to_writer(&mut Broken, &json!({ "k": 1u8 })).expect_err("must fail");
        assert!(err.to_string().contains("disk on fire"), "{err}");
    }

    #[test]
    fn from_str_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": 1} x",
            "tru",
            "\"unterminated",
            "{1: 2}",
            "[1 2]",
            "nan",
        ] {
            let err = from_str(bad).expect_err(&format!("{bad:?} must not parse"));
            assert!(err.to_string().contains("at byte"), "{bad:?}: {err}");
        }
    }
}
