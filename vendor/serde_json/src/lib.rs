//! A minimal, API-compatible subset of `serde_json` over the vendored serde
//! data model, vendored because the build environment has no access to
//! crates.io. Provides the `json!` macro (object/array/expression forms),
//! `to_value`, `to_string` and `to_string_pretty`.

use serde::Serialize;
pub use serde::Value;

/// Serialization error. The vendored data model is infallible, so this is
/// never produced; it exists so `.unwrap()` call sites type-check against
/// the real serde_json signatures.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 9.0e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (level + 1)),
            " ".repeat(w * level),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(colon);
                write_value(val, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Builds a [`Value`] from JSON-like syntax. Supports objects with literal
/// string keys, arrays, and arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = json!({
            "name": "bench",
            "ok": true,
            "count": 3usize,
            "ratio": 1.5f64,
            "items": vec![1u32, 2],
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"bench","ok":true,"count":3,"ratio":1.5,"items":[1,2]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"bench\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "k": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn numbers_format_like_json() {
        assert_eq!(to_string(&json!(2.0f64)).unwrap(), "2");
        assert_eq!(to_string(&json!(2.25f64)).unwrap(), "2.25");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }
}
