//! The graph partitioner on its own: partition synthetic graphs and the
//! first window of a real task graph, and compare the multilevel scheme with
//! the naive BFS baseline.
//!
//! Run with:
//! ```text
//! cargo run --example partition_playground --release
//! ```

use numadag::graph::partition::pipeline::{
    BfsGrowingInitial, FmRefiner, HeavyEdgeCoarsener, MultilevelPipeline,
};
use numadag::graph::{
    generators, metrics, partition, partition_with, PartitionConfig, PartitionScheme,
};
use numadag::prelude::*;
use numadag::tdg::{window_to_csr, TaskWindow};

fn report(name: &str, graph: &numadag::graph::CsrGraph, k: usize) {
    let ml = partition(graph, &PartitionConfig::new(k));
    let bfs = partition(
        graph,
        &PartitionConfig::new(k).with_scheme(PartitionScheme::BfsGrowing),
    );
    let qm = metrics::quality(graph, &ml);
    let qb = metrics::quality(graph, &bfs);
    println!(
        "{name:<28} |V|={:>6} |E|={:>7}  multilevel: cut={:>9} imb={:.3}   bfs: cut={:>9} imb={:.3}",
        graph.num_vertices(),
        graph.num_edges(),
        qm.edge_cut,
        qm.imbalance,
        qb.edge_cut,
        qb.imbalance
    );
}

fn main() {
    let k = 8;
    println!("Partitioning into {k} parts (one per socket of the bullion S16):\n");

    report("32x32 grid", &generators::grid_2d(32, 32, 4), k);
    report("64x64 grid", &generators::grid_2d(64, 64, 4), k);
    report(
        "layered DAG skeleton",
        &generators::layered_dag_skeleton(40, 32, 2, 1 << 14),
        k,
    );
    report(
        "random graph (d=8)",
        &generators::random_graph(2000, 8, 64, 3),
        k,
    );
    report("two heavy clusters", &generators::two_clusters(64, 100), 2);

    println!("\nFirst window (1024 tasks) of real task graphs:\n");
    for app in [
        Application::Jacobi,
        Application::QrFactorization,
        Application::ConjugateGradient,
    ] {
        let spec = app.build(ProblemScale::Small, k);
        let window = TaskWindow::initial(&spec.graph, WindowConfig::new(1024));
        let wg = window_to_csr(&spec.graph, &window);
        report(app.label(), &wg.graph, k);
    }

    println!(
        "\nThe multilevel scheme consistently cuts fewer (byte-weighted) edges at the same\n\
         balance, which is exactly why RGP uses it instead of a simple heuristic."
    );

    // The pipeline stages are pluggable: swap one stage and keep the rest.
    // Here the BFS initial partitioner runs *inside* the multilevel pipeline
    // (coarsening + FM refinement around it) — most of the gap to the
    // default pipeline closes, showing the refiner does the heavy lifting.
    println!("\nCustom stage composition (64x64 grid, k = {k}):\n");
    let g = generators::grid_2d(64, 64, 4);
    let cfg = PartitionConfig::new(k);
    let hybrid = MultilevelPipeline::new(HeavyEdgeCoarsener, BfsGrowingInitial, FmRefiner);
    for (name, p) in [
        ("default multilevel", partition(&g, &cfg)),
        (
            "ML coarsen + BFS initial + FM",
            partition_with(&g, &cfg, &hybrid),
        ),
        (
            "flat BFS (no refinement)",
            partition(&g, &cfg.clone().with_scheme(PartitionScheme::BfsGrowing)),
        ),
    ] {
        let q = metrics::quality(&g, &p);
        println!("  {name:<30} cut={:>7} imb={:.3}", q.edge_cut, q.imbalance);
    }
}
