//! Symmetric matrix inversion (Cholesky → TRTRI → LAUUM) under all four
//! scheduling policies, with a per-socket placement breakdown.
//!
//! This is the densest DAG of the paper's suite and the one where the
//! partitioner has the most structure to exploit. The custom-sized instance
//! rides the `Experiment` API as a custom workload.
//!
//! Run with:
//! ```text
//! cargo run --example cholesky_numa --release
//! ```

use numadag::kernels::symm_inv::{build, SymmInvParams};
use numadag::prelude::*;

fn main() {
    let topology = Topology::bullion_s16();
    let sockets = topology.num_sockets();

    let params = SymmInvParams {
        nt: 10,
        tile_n: 192,
    };
    let spec = build(params, sockets);
    println!(
        "Symmetric matrix inversion: {} tiles per dimension, {} tasks, critical path {:.0} work units\n",
        params.nt,
        spec.num_tasks(),
        spec.graph.critical_path_work()
    );

    let report = Experiment::new()
        .topology(topology.clone())
        .workload(spec.clone())
        .policies([PolicyKind::Dfifo, PolicyKind::RgpLas, PolicyKind::Ep])
        .seed(7)
        .run();

    for cell in &report.cells {
        println!(
            "{:<8}  speedup {:>6.3}  local {:>5.1}%  stolen {:>5.1}%  imbalance {:>5.2}",
            cell.policy,
            cell.speedup_vs_baseline,
            100.0 * cell.local_fraction,
            100.0 * cell.steal_fraction,
            cell.load_imbalance,
        );
    }

    // Show where the partitioner put the first window's panel tasks; the
    // introspection run goes through the same Executor interface.
    let executor = Backend::Simulated.executor(ExecutionConfig::new(topology).with_trace());
    let mut rgp = RgpPolicy::rgp_las();
    let _ = executor.execute(&spec, &mut rgp);
    println!(
        "\nRGP window: {} tasks partitioned, window edge cut = {} bytes",
        rgp.window_size_used(),
        rgp.window_edge_cut()
    );
    let panel_sockets: Vec<String> = spec
        .graph
        .tasks()
        .iter()
        .filter(|t| t.kind == "potrf")
        .filter_map(|t| rgp.window_socket_of(t.id).map(|s| format!("{}→{s}", t.id)))
        .collect();
    println!(
        "diagonal POTRF tasks in the window: {}",
        panel_sockets.join(", ")
    );
}
