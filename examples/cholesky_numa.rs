//! Symmetric matrix inversion (Cholesky → TRTRI → LAUUM) under all four
//! scheduling policies, with a per-socket placement breakdown.
//!
//! This is the densest DAG of the paper's suite and the one where the
//! partitioner has the most structure to exploit.
//!
//! Run with:
//! ```text
//! cargo run --example cholesky_numa --release
//! ```

use numadag::kernels::symm_inv::{build, SymmInvParams};
use numadag::prelude::*;

fn main() {
    let topology = Topology::bullion_s16();
    let sockets = topology.num_sockets();
    let simulator = Simulator::new(ExecutionConfig::new(topology).with_trace());

    let params = SymmInvParams {
        nt: 10,
        tile_n: 192,
    };
    let spec = build(params, sockets);
    println!(
        "Symmetric matrix inversion: {} tiles per dimension, {} tasks, critical path {:.0} work units\n",
        params.nt,
        spec.num_tasks(),
        spec.graph.critical_path_work()
    );

    let mut las = LasPolicy::new(7);
    let baseline = simulator.run(&spec, &mut las);

    for kind in [
        PolicyKind::Dfifo,
        PolicyKind::RgpLas,
        PolicyKind::Ep,
        PolicyKind::Las,
    ] {
        let mut policy = make_policy(kind, &spec, 7).expect("all policies available");
        let report = simulator.run(&spec, policy.as_mut());
        println!(
            "{:<8}  speedup {:>6.3}  local {:>5.1}%  stolen {:>5.1}%  tasks/socket {:?}",
            report.policy,
            report.speedup_over(&baseline),
            100.0 * report.local_fraction(),
            100.0 * report.steal_fraction(),
            report.tasks_per_socket
        );
    }

    // Show where the partitioner put the first window's panel tasks.
    let mut rgp = RgpPolicy::rgp_las();
    let _ = simulator.run(&spec, &mut rgp);
    println!(
        "\nRGP window: {} tasks partitioned, window edge cut = {} bytes",
        rgp.window_size_used(),
        rgp.window_edge_cut()
    );
    let panel_sockets: Vec<String> = spec
        .graph
        .tasks()
        .iter()
        .filter(|t| t.kind == "potrf")
        .filter_map(|t| rgp.window_socket_of(t.id).map(|s| format!("{}→{s}", t.id)))
        .collect();
    println!(
        "diagonal POTRF tasks in the window: {}",
        panel_sockets.join(", ")
    );
}
