//! Quickstart: declare a policy-comparison sweep with the fluent
//! `Experiment` API, run it on the simulated 8-socket machine of the paper,
//! and compare makespans, locality and balance.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart --release
//! ```

use numadag::prelude::*;

fn main() {
    // 1. The machine: the paper's Atos bullion S16 (8 sockets x 4 cores).
    let topology = Topology::bullion_s16();
    println!(
        "machine: {} ({} cores)\n",
        topology.name(),
        topology.num_cores()
    );

    // 2. The sweep: one of the paper's eight applications under every policy
    //    of Figure 1 (LAS is the baseline and is reported last).
    let report = Experiment::new()
        .topology(topology)
        .app(Application::Jacobi)
        .scale(ProblemScale::Small)
        .policies([PolicyKind::Dfifo, PolicyKind::RgpLas, PolicyKind::Ep])
        .backend(Backend::Simulated)
        .seed(42)
        .run();

    // 3. The report: one cell per (application, policy) pair.
    println!(
        "workload: {} — {} tasks\n",
        report.application_labels().join(", "),
        report.cells.first().map_or(0, |c| c.tasks),
    );
    println!(
        "{:<10} {:>14} {:>10} {:>9} {:>11}",
        "policy", "makespan (ns)", "speedup", "local %", "imbalance"
    );
    for cell in &report.cells {
        println!(
            "{:<10} {:>14.0} {:>10.3} {:>8.1}% {:>11.2}",
            cell.policy,
            cell.makespan_ns,
            cell.speedup_vs_baseline,
            100.0 * cell.local_fraction,
            cell.load_imbalance
        );
    }

    println!(
        "\nRGP+LAS should serve a larger fraction of bytes locally than LAS, and DFIFO a much\n\
         smaller one — that difference is exactly the NUMA effect the paper targets."
    );
}
