//! Quickstart: build a small task-based application, run it under the
//! baseline (LAS) and under the paper's technique (RGP+LAS) on a simulated
//! 8-socket machine, and compare makespans and memory traffic.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart --release
//! ```

use numadag::prelude::*;

fn main() {
    // 1. The machine: the paper's Atos bullion S16 (8 sockets x 4 cores).
    let topology = Topology::bullion_s16();
    println!(
        "machine: {} ({} cores)\n",
        topology.name(),
        topology.num_cores()
    );
    let simulator = Simulator::new(ExecutionConfig::new(topology));

    // 2. The workload: a blocked Jacobi solver from the kernels crate, small
    //    enough to finish instantly.
    let spec = Application::Jacobi.build(ProblemScale::Small, 8);
    println!(
        "workload: {} — {} tasks, {} regions, {:.1} MiB of data, average parallelism {:.1}\n",
        spec.name,
        spec.num_tasks(),
        spec.num_regions(),
        spec.total_region_bytes() as f64 / (1024.0 * 1024.0),
        spec.graph.average_parallelism(),
    );

    // 3. Run every policy of the paper's Figure 1.
    let mut las = LasPolicy::new(42);
    let baseline = simulator.run(&spec, &mut las);

    let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(DfifoPolicy::new()),
        Box::new(RgpPolicy::rgp_las()),
        Box::new(EpPolicy::from_spec(&spec).expect("kernel ships an expert placement")),
    ];

    println!(
        "{:<10} {:>14} {:>10} {:>9} {:>11}",
        "policy", "makespan (ns)", "speedup", "local %", "imbalance"
    );
    println!(
        "{:<10} {:>14.0} {:>10.3} {:>8.1}% {:>11.2}",
        baseline.policy,
        baseline.makespan_ns,
        1.0,
        100.0 * baseline.local_fraction(),
        baseline.load_imbalance()
    );
    for mut policy in policies {
        let report = simulator.run(&spec, policy.as_mut());
        println!(
            "{:<10} {:>14.0} {:>10.3} {:>8.1}% {:>11.2}",
            report.policy,
            report.makespan_ns,
            report.speedup_over(&baseline),
            100.0 * report.local_fraction(),
            report.load_imbalance()
        );
    }

    println!(
        "\nRGP+LAS should serve a larger fraction of bytes locally than LAS, and DFIFO a much\n\
         smaller one — that difference is exactly the NUMA effect the paper targets."
    );
}
