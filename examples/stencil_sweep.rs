//! Window-size sweep on the three stencil kernels (Jacobi, Gauss–Seidel,
//! red–black): how much of the TDG does RGP need to see before its placement
//! beats plain LAS?
//!
//! The window axis is expressed through the policy registry: each column is
//! the `rgp-las:w=N` policy, so the whole study is a single `Experiment` —
//! sharded across two worker threads here (`parallelism`), with live
//! per-cell progress on stderr (`on_cell_complete`). On the simulator
//! backend the sharded report is bit-identical to a serial run.
//!
//! Run with:
//! ```text
//! cargo run --example stencil_sweep --release
//! ```

use numadag::kernels::{gauss_seidel, jacobi, red_black};
use numadag::prelude::*;

fn main() {
    let topology = Topology::bullion_s16();
    let sockets = topology.num_sockets();

    let specs: Vec<TaskGraphSpec> = vec![
        jacobi::build(
            jacobi::JacobiParams {
                nb: 10,
                block_elems: 32 * 1024,
                iterations: 8,
            },
            sockets,
        ),
        gauss_seidel::build(
            gauss_seidel::GaussSeidelParams {
                nb: 10,
                block_elems: 32 * 1024,
                iterations: 8,
            },
            sockets,
        ),
        red_black::build(
            red_black::RedBlackParams {
                nb: 10,
                block_elems: 32 * 1024,
                iterations: 8,
            },
            sockets,
        ),
    ];
    let names: Vec<String> = specs.iter().map(|s| s.name.to_string()).collect();

    let windows = [32usize, 64, 128, 256, 512, 1024];
    let mut experiment = Experiment::new()
        .topology(topology)
        .policies(windows.map(PolicyKind::rgp_las_window))
        .seed(11)
        .parallelism(2)
        .on_cell_complete(|p: &CellProgress| {
            eprintln!(
                "[{}/{}] {} under {} done in {:.1} ms",
                p.completed,
                p.total,
                p.application,
                p.policy,
                p.wall_ns / 1e6
            );
        });
    for spec in specs {
        experiment = experiment.workload(spec);
    }
    let report = experiment.run();
    println!(
        "sweep: {} cells in {:.1} ms wall on {} worker threads\n",
        report.cells.len(),
        report.timing.total_wall_ns / 1e6,
        report.timing.jobs
    );

    println!("RGP+LAS speedup over LAS as the partitioned window grows:\n");
    print!("{:<16}", "kernel");
    for w in windows {
        print!("{w:>9}");
    }
    println!();
    for name in &names {
        print!("{name:<16}");
        for w in windows {
            let label = PolicyKind::rgp_las_window(w).label();
            let s = report.speedup_of(name, &label).unwrap_or(f64::NAN);
            print!("{s:>9.3}");
        }
        println!();
    }

    println!(
        "\nSmall windows only cover the initialisation tasks, so the partition has little to\n\
         propagate; once the window spans a full sweep the neighbouring tiles get co-located\n\
         and the halo exchanges become local."
    );
}
