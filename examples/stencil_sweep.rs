//! Window-size sweep on the three stencil kernels (Jacobi, Gauss–Seidel,
//! red–black): how much of the TDG does RGP need to see before its placement
//! beats plain LAS?
//!
//! Run with:
//! ```text
//! cargo run --example stencil_sweep --release
//! ```

use numadag::kernels::{gauss_seidel, jacobi, red_black};
use numadag::prelude::*;

fn main() {
    let topology = Topology::bullion_s16();
    let sockets = topology.num_sockets();
    let simulator = Simulator::new(ExecutionConfig::new(topology));

    let specs: Vec<TaskGraphSpec> = vec![
        jacobi::build(
            jacobi::JacobiParams {
                nb: 10,
                block_elems: 32 * 1024,
                iterations: 8,
            },
            sockets,
        ),
        gauss_seidel::build(
            gauss_seidel::GaussSeidelParams {
                nb: 10,
                block_elems: 32 * 1024,
                iterations: 8,
            },
            sockets,
        ),
        red_black::build(
            red_black::RedBlackParams {
                nb: 10,
                block_elems: 32 * 1024,
                iterations: 8,
            },
            sockets,
        ),
    ];

    let windows = [32usize, 64, 128, 256, 512, 1024];
    println!("RGP+LAS speedup over LAS as the partitioned window grows:\n");
    print!("{:<16}", "kernel");
    for w in windows {
        print!("{w:>9}");
    }
    println!();

    for spec in &specs {
        let mut las = LasPolicy::new(11);
        let baseline = simulator.run(spec, &mut las);
        print!("{:<16}", spec.name);
        for w in windows {
            let mut rgp = RgpPolicy::new(RgpConfig::default().with_seed(11).with_window_size(w));
            let report = simulator.run(spec, &mut rgp);
            print!("{:>9.3}", report.speedup_over(&baseline));
        }
        println!();
    }

    println!(
        "\nSmall windows only cover the initialisation tasks, so the partition has little to\n\
         propagate; once the window spans a full sweep the neighbouring tiles get co-located\n\
         and the halo exchanges become local."
    );
}
